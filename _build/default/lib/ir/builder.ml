(** Imperative construction of routines, used by the front end's lowering
    and by tests that write CFGs directly.

    Blocks are created with a placeholder [Ret None] terminator and must be
    sealed with [set_term] (or left as returns); [finish] validates the
    result. *)

type t = {
  routine : Routine.t;
  mutable cur : int;  (** id of the block new instructions go to *)
}

let start ~name ~nparams =
  let cfg = Cfg.create () in
  let entry = Cfg.add_block ~term:(Instr.Ret None) cfg in
  Cfg.set_entry cfg entry.Block.id;
  let params = List.init nparams Fun.id in
  let routine = Routine.create ~name ~params ~cfg ~next_reg:nparams in
  { routine; cur = entry.Block.id }

let cfg t = t.routine.Routine.cfg

let fresh_reg t = Routine.fresh_reg t.routine

let new_block t =
  let b = Cfg.add_block ~term:(Instr.Ret None) (cfg t) in
  b.Block.id

let switch t id =
  ignore (Cfg.block (cfg t) id);
  t.cur <- id

let current t = t.cur

let emit t i = Block.append (Cfg.block (cfg t) t.cur) i

let set_term t term = (Cfg.block (cfg t) t.cur).Block.term <- term

(* Convenience emitters returning the destination register. *)

let const t v =
  let dst = fresh_reg t in
  emit t (Instr.Const { dst; value = v });
  dst

let int t i = const t (Value.I i)

let float t f = const t (Value.F f)

let copy t src =
  let dst = fresh_reg t in
  emit t (Instr.Copy { dst; src });
  dst

let copy_to t ~dst ~src = emit t (Instr.Copy { dst; src })

let unop t op src =
  let dst = fresh_reg t in
  emit t (Instr.Unop { op; dst; src });
  dst

let binop t op a b =
  let dst = fresh_reg t in
  emit t (Instr.Binop { op; dst; a; b });
  dst

let load t addr =
  let dst = fresh_reg t in
  emit t (Instr.Load { dst; addr });
  dst

let store t ~addr ~src = emit t (Instr.Store { addr; src })

let alloca ?(init = Value.I 0) t words =
  let dst = fresh_reg t in
  emit t (Instr.Alloca { dst; words; init });
  dst

let call t ~callee args =
  let dst = fresh_reg t in
  emit t (Instr.Call { dst = Some dst; callee; args });
  dst

let call_void t ~callee args = emit t (Instr.Call { dst = None; callee; args })

let jump t l = set_term t (Instr.Jump l)

let cbr t ~cond ~ifso ~ifnot = set_term t (Instr.Cbr { cond; ifso; ifnot })

let ret t r = set_term t (Instr.Ret r)

let finish t =
  Routine.validate t.routine;
  t.routine
