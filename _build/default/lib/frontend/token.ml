(** Tokens shared by the ocamllex lexer and the recursive-descent parser. *)

type t =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | FN | VAR | IF | ELSE | WHILE | FOR | TO | DOWNTO | STEP | RETURN
  | TINT | TFLOAT
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI | COLON
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | ANDAND | OROR | BANG
  | ASSIGN | EQEQ | NEQ | LT | LE | GT | GE
  | EOF

let to_string = function
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | IDENT s -> Printf.sprintf "identifier %S" s
  | FN -> "'fn'" | VAR -> "'var'" | IF -> "'if'" | ELSE -> "'else'"
  | WHILE -> "'while'" | FOR -> "'for'" | TO -> "'to'" | DOWNTO -> "'downto'"
  | STEP -> "'step'" | RETURN -> "'return'"
  | TINT -> "'int'" | TFLOAT -> "'float'"
  | LPAREN -> "'('" | RPAREN -> "')'" | LBRACE -> "'{'" | RBRACE -> "'}'"
  | LBRACKET -> "'['" | RBRACKET -> "']'"
  | COMMA -> "','" | SEMI -> "';'" | COLON -> "':'"
  | PLUS -> "'+'" | MINUS -> "'-'" | STAR -> "'*'" | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | ANDAND -> "'&&'" | OROR -> "'||'" | BANG -> "'!'"
  | ASSIGN -> "'='" | EQEQ -> "'=='" | NEQ -> "'!='"
  | LT -> "'<'" | LE -> "'<='" | GT -> "'>'" | GE -> "'>='"
  | EOF -> "end of input"
