(** Semantic analysis: symbol resolution and type checking.

    The language has a deliberately FORTRAN-flavoured static semantics:
    one flat scope per routine (a name may be declared once and is visible
    from its declaration onward), implicit [int] to [float] widening in
    arithmetic, assignments, arguments and returns, and arrays passed by
    reference with shapes that must match the callee's declaration.

    [type_of_expr] is shared with the lowering pass so the two cannot
    disagree about typing. *)

open Ast

exception Error of { line : int; message : string }

let err line fmt = Printf.ksprintf (fun message -> raise (Error { line; message })) fmt

type fsig = { fparams : vtype list; fret : scalar_ty option }

type env = { fsigs : (string, fsig) Hashtbl.t }

type intrinsic = Sqrt | Abs | Min | Max | Mod | To_float | To_int | Emit

let intrinsic_of_name = function
  | "sqrt" -> Some Sqrt
  | "abs" -> Some Abs
  | "min" -> Some Min
  | "max" -> Some Max
  | "mod" -> Some Mod
  | "float" -> Some To_float
  | "int" -> Some To_int
  | "emit" -> Some Emit
  | _ -> None

let is_intrinsic name = Option.is_some (intrinsic_of_name name)

(* Widen int to float when the other operand is float. *)
let join_scalar line a b =
  match a, b with
  | TInt, TInt -> TInt
  | TFlt, TFlt | TInt, TFlt | TFlt, TInt -> ignore line; TFlt

let scalar line ~what = function
  | Scalar t -> t
  | Array _ as a -> err line "%s must be a scalar, got %s" what (vtype_to_string a)

(* [vars] looks a name up in the routine's scope. *)
let rec type_of_expr env ~vars ~line e : vtype =
  let scalar_of e ~what = scalar line ~what (type_of_expr env ~vars ~line e) in
  match e with
  | Int_lit _ -> Scalar TInt
  | Float_lit _ -> Scalar TFlt
  | Var name -> begin
    match vars name with
    | Some t -> t
    | None -> err line "undefined variable %s" name
  end
  | Index (name, subs) -> begin
    match vars name with
    | Some (Array { elt; dims }) ->
      if List.length subs <> List.length dims then
        err line "array %s has rank %d but %d subscripts given" name (List.length dims)
          (List.length subs);
      List.iter
        (fun s ->
          match scalar_of s ~what:"array subscript" with
          | TInt -> ()
          | TFlt -> err line "array subscript must be int")
        subs;
      Scalar elt
    | Some (Scalar _) -> err line "%s is a scalar, not an array" name
    | None -> err line "undefined array %s" name
  end
  | Unary (UNeg, e) -> Scalar (scalar_of e ~what:"negation operand")
  | Unary (UNot, e) -> begin
    match scalar_of e ~what:"'!' operand" with
    | TInt -> Scalar TInt
    | TFlt -> err line "'!' requires an int operand"
  end
  | Binary (op, a, b) -> begin
    let ta = scalar_of a ~what:"operand" in
    let tb = scalar_of b ~what:"operand" in
    match op with
    | BAdd | BSub | BMul | BDiv -> Scalar (join_scalar line ta tb)
    | BRem -> begin
      match ta, tb with
      | TInt, TInt -> Scalar TInt
      | _ -> err line "'%%' requires int operands"
    end
    | BAnd | BOr -> begin
      match ta, tb with
      | TInt, TInt -> Scalar TInt
      | _ -> err line "logical operators require int operands"
    end
    | BEq | BNe | BLt | BLe | BGt | BGe -> Scalar TInt
  end
  | Call (name, args) -> type_of_call env ~vars ~line name args

and type_of_call env ~vars ~line name args : vtype =
  let scalar_of e ~what = scalar line ~what (type_of_expr env ~vars ~line e) in
  let arity n =
    if List.length args <> n then
      err line "%s expects %d argument(s), got %d" name n (List.length args)
  in
  match intrinsic_of_name name with
  | Some Sqrt ->
    arity 1;
    ignore (scalar_of (List.hd args) ~what:"sqrt argument");
    Scalar TFlt
  | Some Abs ->
    arity 1;
    Scalar (scalar_of (List.hd args) ~what:"abs argument")
  | Some (Min | Max) -> begin
    arity 2;
    match args with
    | [ a; b ] ->
      Scalar (join_scalar line (scalar_of a ~what:"operand") (scalar_of b ~what:"operand"))
    | _ -> assert false
  end
  | Some Mod -> begin
    arity 2;
    match List.map (fun a -> scalar_of a ~what:"mod operand") args with
    | [ TInt; TInt ] -> Scalar TInt
    | _ -> err line "mod requires int operands"
  end
  | Some To_float ->
    arity 1;
    ignore (scalar_of (List.hd args) ~what:"float() argument");
    Scalar TFlt
  | Some To_int ->
    arity 1;
    ignore (scalar_of (List.hd args) ~what:"int() argument");
    Scalar TInt
  | Some Emit ->
    arity 1;
    ignore (scalar_of (List.hd args) ~what:"emit argument");
    Scalar TInt
  | None -> begin
    match Hashtbl.find_opt env.fsigs name with
    | None -> err line "call to undefined routine %s" name
    | Some { fparams; fret } ->
      if List.length args <> List.length fparams then
        err line "%s expects %d argument(s), got %d" name (List.length fparams)
          (List.length args);
      List.iteri
        (fun i (arg, expected) ->
          let got = type_of_expr env ~vars ~line arg in
          match expected, got with
          | Scalar TFlt, Scalar (TInt | TFlt) | Scalar TInt, Scalar TInt -> ()
          | Scalar TInt, Scalar TFlt ->
            err line "argument %d of %s: cannot pass float for int" (i + 1) name
          | Array { elt = e1; dims = d1 }, Array { elt = e2; dims = d2 }
            when e1 = e2 && d1 = d2 -> ()
          | expected, got ->
            err line "argument %d of %s: expected %s, got %s" (i + 1) name
              (vtype_to_string expected) (vtype_to_string got))
        (List.combine args fparams);
      (match fret with
      | Some t -> Scalar t
      | None -> err line "routine %s returns no value and cannot be used in an expression" name)
  end

(* Call in statement position: void routines are fine. *)
and check_call_stmt env ~vars ~line name args =
  match intrinsic_of_name name, Hashtbl.find_opt env.fsigs name with
  | None, Some { fret = None; fparams } ->
    let saved = { fsigs = Hashtbl.copy env.fsigs } in
    (* Reuse the argument checking of [type_of_call] by faking an [int]
       return; only the arguments are validated. *)
    Hashtbl.replace saved.fsigs name { fret = Some TInt; fparams };
    ignore (type_of_call saved ~vars ~line name args)
  | _ -> ignore (type_of_call env ~vars ~line name args)

(* ------------------------------------------------------------------ *)
(* Statement checking                                                  *)

type scope = (string, vtype) Hashtbl.t

let check_assignable line ~target ~value =
  match target, value with
  | TFlt, (TInt | TFlt) | TInt, TInt -> ()
  | TInt, TFlt -> err line "cannot assign float to int without int(...)"

let rec check_stmt env (scope : scope) (ret : scalar_ty option) (s : stmt) =
  let line = s.line in
  let vars name = Hashtbl.find_opt scope name in
  let expr_ty e = type_of_expr env ~vars ~line e in
  let scalar_expr e ~what = scalar line ~what (expr_ty e) in
  match s.desc with
  | Decl (name, ty, init) ->
    if Hashtbl.mem scope name then err line "duplicate declaration of %s" name;
    (match ty, init with
    | _, None -> ()
    | Scalar t, Some e -> check_assignable line ~target:t ~value:(scalar_expr e ~what:"initializer")
    | Array _, Some _ -> err line "arrays cannot have initializers");
    Hashtbl.replace scope name ty
  | Assign (name, e) -> begin
    match vars name with
    | None -> err line "assignment to undefined variable %s" name
    | Some (Array _) -> err line "cannot assign to array %s without subscripts" name
    | Some (Scalar t) -> check_assignable line ~target:t ~value:(scalar_expr e ~what:"assigned value")
  end
  | Assign_index (name, subs, e) -> begin
    match expr_ty (Index (name, subs)) with
    | Scalar t -> check_assignable line ~target:t ~value:(scalar_expr e ~what:"stored value")
    | Array _ -> assert false
  end
  | If (cond, then_, else_) ->
    (match scalar_expr cond ~what:"condition" with
    | TInt -> ()
    | TFlt -> err line "condition must be int");
    List.iter (check_stmt env scope ret) then_;
    List.iter (check_stmt env scope ret) else_
  | While (cond, body) ->
    (match scalar_expr cond ~what:"condition" with
    | TInt -> ()
    | TFlt -> err line "condition must be int");
    List.iter (check_stmt env scope ret) body
  | For { var; start; stop; step; down = _; body } ->
    (match vars var with
    | Some (Scalar TInt) -> ()
    | Some _ -> err line "loop variable %s must be int" var
    | None -> err line "loop variable %s must be declared before the loop" var);
    List.iter
      (fun (e, what) ->
        match scalar_expr e ~what with
        | TInt -> ()
        | TFlt -> err line "%s must be int" what)
      ((start, "loop start") :: (stop, "loop bound")
      :: (match step with Some e -> [ (e, "loop step") ] | None -> []));
    List.iter (check_stmt env scope ret) body
  | Return None ->
    if ret <> None then err line "this routine must return a value"
  | Return (Some e) -> begin
    match ret with
    | None -> err line "this routine returns no value"
    | Some t -> check_assignable line ~target:t ~value:(scalar_expr e ~what:"return value")
  end
  | Expr_stmt (Call (name, args)) -> check_call_stmt env ~vars ~line name args
  | Expr_stmt e -> ignore (expr_ty e)

let check_fn env (f : fndef) =
  let scope : scope = Hashtbl.create 16 in
  List.iter
    (fun (name, ty) ->
      if Hashtbl.mem scope name then err f.line "duplicate parameter %s in %s" name f.name;
      Hashtbl.replace scope name ty)
    f.params;
  List.iter (check_stmt env scope f.ret) f.body

let check_program (prog : program) =
  let env = { fsigs = Hashtbl.create 16 } in
  List.iter
    (fun (f : fndef) ->
      if Hashtbl.mem env.fsigs f.name then err f.line "duplicate routine %s" f.name;
      if is_intrinsic f.name then err f.line "%s is a reserved intrinsic name" f.name;
      Hashtbl.replace env.fsigs f.name
        { fparams = List.map snd f.params; fret = f.ret })
    prog;
  List.iter (check_fn env) prog;
  env
