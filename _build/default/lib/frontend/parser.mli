(** Hand-written recursive-descent parser for the mini language (Menhir is
    not available in this environment; see DESIGN.md). Precedence, loosest
    to tightest: [||] < [&&] < comparisons < [+ -] < [* / %] < unary <
    postfix. *)

exception Error of { line : int; message : string }

val parse_program : (Token.t * int) list -> Ast.program

val parse_string : string -> Ast.program
