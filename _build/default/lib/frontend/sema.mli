(** Semantic analysis: symbol resolution and type checking.

    FORTRAN-flavoured rules: one flat scope per routine, implicit [int] to
    [float] widening, arrays passed by reference with shapes matching the
    callee's declaration. [type_of_expr] is shared with the lowering pass
    so the two cannot disagree. *)

open Ast

exception Error of { line : int; message : string }

type fsig = { fparams : vtype list; fret : scalar_ty option }

type env = { fsigs : (string, fsig) Hashtbl.t }

type intrinsic = Sqrt | Abs | Min | Max | Mod | To_float | To_int | Emit

val intrinsic_of_name : string -> intrinsic option

val is_intrinsic : string -> bool

(** Common type of two scalar operands (int widens to float). *)
val join_scalar : int -> scalar_ty -> scalar_ty -> scalar_ty

(** Type of an expression under [vars] (the routine's scope lookup).
    @raise Error on ill-typed expressions. *)
val type_of_expr :
  env -> vars:(string -> vtype option) -> line:int -> expr -> vtype

(** Check a whole program and return its routine signatures.
    @raise Error on the first violation. *)
val check_program : program -> env
