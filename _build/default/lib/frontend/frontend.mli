(** Front-end entry points: source text to ILOC.

    The language is a small FORTRAN-flavoured imperative language (see
    [Ast]); lowering produces ILOC under the paper's Section 2.2
    expression-naming discipline. *)

(** Any front-end failure (lexical, syntactic, semantic, lowering), with a
    1-based source line. *)
exception Error of { line : int; message : string }

val parse_string : string -> Ast.program

(** Parse, type-check and lower. *)
val compile_string : string -> Epre_ir.Program.t
