lib/frontend/lower.mli: Ast Epre_ir Sema
