lib/frontend/frontend.mli: Ast Epre_ir
