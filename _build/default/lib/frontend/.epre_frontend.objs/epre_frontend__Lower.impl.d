lib/frontend/lower.ml: Ast Builder Epre_ir Hashtbl Instr List Op Printf Program Sema Value
