lib/frontend/sema.ml: Ast Hashtbl List Option Printf
