lib/frontend/parser.mli: Ast Token
