lib/frontend/ast.ml: List Printf String
