lib/frontend/lexer.ml: Hashtbl Lexing List Printf Token
