lib/frontend/frontend.ml: Lexer Lower Parser Sema
