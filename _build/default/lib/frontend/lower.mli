(** Lowering to ILOC with the paper's naming discipline (Section 2.2).

    Every occurrence of an expression still evaluates, but its destination
    is the canonical name for that expression (a hash table of expressions,
    exactly as the paper describes the front end); variables are targets of
    copies only. Subscripts lower to 1-based row-major address arithmetic;
    counted loops are emitted in the rotated guard + bottom-test shape of
    the paper's Figure 3; locals are zero-initialized at entry so SSA
    construction sees a strict program. *)

exception Error of { line : int; message : string }

val lower_program : Sema.env -> Ast.program -> Epre_ir.Program.t
