(** Lowering to ILOC with the paper's naming discipline.

    Section 2.2: the front end maintains "a hash table of expressions",
    creating a new name whenever a new expression is discovered, so that
    within a routine lexically-identical expressions always receive the same
    register. Variable names are targets of [Copy] instructions only;
    expression names target everything else. Every occurrence of an
    expression still evaluates — finding the redundant ones is PRE's job,
    not the front end's.

    Array subscripts lower to the 1-based row-major form the paper's
    Section 2.1 discusses: [base + (((i-1)*d2 + (j-1))*d3 + (k-1))]. *)

open Ast
open Epre_ir

exception Error of { line : int; message : string }

let err line fmt = Printf.ksprintf (fun message -> raise (Error { line; message })) fmt

type binding =
  | Scalar_var of { reg : Instr.reg; ty : scalar_ty }
  | Array_var of { base : Instr.reg; elt : scalar_ty; dims : int list }

type ctx = {
  env : Sema.env;
  builder : Builder.t;
  vars : (string, binding) Hashtbl.t;
  names : (expr_key, Instr.reg) Hashtbl.t;
      (** the expression hash table of Section 2.2: key -> canonical name *)
  ret : scalar_ty option;
}

and expr_key =
  | KConst of Value.t
  | KUnop of Op.unop * Instr.reg
  | KBinop of Op.binop * Instr.reg * Instr.reg
  | KLoad of Instr.reg  (** loads are named per address expression *)

(* ------------------------------------------------------------------ *)
(* Named emission: every occurrence emits code, but the destination is the
   canonical name for that expression. *)

let name_of ctx key =
  match Hashtbl.find_opt ctx.names key with
  | Some r -> r
  | None ->
    let r = Builder.fresh_reg ctx.builder in
    Hashtbl.replace ctx.names key r;
    r

let emit_const ctx v =
  let dst = name_of ctx (KConst v) in
  Builder.emit ctx.builder (Instr.Const { dst; value = v });
  dst

let emit_unop ctx op src =
  let dst = name_of ctx (KUnop (op, src)) in
  Builder.emit ctx.builder (Instr.Unop { op; dst; src });
  dst

let emit_binop ctx op a b =
  (* Canonicalize commutative operand order so [a+b] and [b+a] share a
     name. *)
  let a, b = if Op.commutative op && b < a then (b, a) else (a, b) in
  let dst = name_of ctx (KBinop (op, a, b)) in
  Builder.emit ctx.builder (Instr.Binop { op; dst; a; b });
  dst

let emit_load ctx addr =
  (* Loads share a name per address expression; stores and calls kill them
     in the downstream redundancy analyses. *)
  let dst = name_of ctx (KLoad addr) in
  Builder.emit ctx.builder (Instr.Load { dst; addr });
  dst

(* ------------------------------------------------------------------ *)

let lookup_var ctx line name =
  match Hashtbl.find_opt ctx.vars name with
  | Some b -> b
  | None -> err line "undefined variable %s (lowering)" name

let widen ctx ~(from_ : scalar_ty) ~(to_ : scalar_ty) reg =
  match from_, to_ with
  | TInt, TInt | TFlt, TFlt -> reg
  | TInt, TFlt -> emit_unop ctx Op.I2F reg
  | TFlt, TInt -> err 0 "internal: float->int widening is never implicit"

let arith_binop op ty =
  match ty, op with
  | TInt, BAdd -> Op.Add
  | TInt, BSub -> Op.Sub
  | TInt, BMul -> Op.Mul
  | TInt, BDiv -> Op.Div
  | TFlt, BAdd -> Op.FAdd
  | TFlt, BSub -> Op.FSub
  | TFlt, BMul -> Op.FMul
  | TFlt, BDiv -> Op.FDiv
  | _ -> invalid_arg "arith_binop"

let cmp_binop op ty =
  match ty, op with
  | TInt, BEq -> Op.Eq
  | TInt, BNe -> Op.Ne
  | TInt, BLt -> Op.Lt
  | TInt, BLe -> Op.Le
  | TInt, BGt -> Op.Gt
  | TInt, BGe -> Op.Ge
  | TFlt, BEq -> Op.FEq
  | TFlt, BNe -> Op.FNe
  | TFlt, BLt -> Op.FLt
  | TFlt, BLe -> Op.FLe
  | TFlt, BGt -> Op.FGt
  | TFlt, BGe -> Op.FGe
  | _ -> invalid_arg "cmp_binop"

let rec lower_scalar ctx line e : Instr.reg * scalar_ty =
  match e with
  | Int_lit i -> (emit_const ctx (Value.I i), TInt)
  | Float_lit f -> (emit_const ctx (Value.F f), TFlt)
  | Var name -> begin
    match lookup_var ctx line name with
    | Scalar_var { reg; ty } -> (reg, ty)
    | Array_var _ -> err line "array %s used as a scalar" name
  end
  | Index (name, subs) -> begin
    match lookup_var ctx line name with
    | Array_var { base; elt; dims } ->
      let addr = lower_address ctx line ~base ~dims subs in
      (emit_load ctx addr, elt)
    | Scalar_var _ -> err line "scalar %s used as an array" name
  end
  | Unary (UNeg, e) ->
    let r, ty = lower_scalar ctx line e in
    let op = match ty with TInt -> Op.Neg | TFlt -> Op.FNeg in
    (emit_unop ctx op r, ty)
  | Unary (UNot, e) ->
    let r, _ = lower_scalar ctx line e in
    let zero = emit_const ctx (Value.I 0) in
    (emit_binop ctx Op.Eq r zero, TInt)
  | Binary ((BAdd | BSub | BMul | BDiv) as op, a, b) ->
    let ra, ta = lower_scalar ctx line a in
    let rb, tb = lower_scalar ctx line b in
    let ty = Sema.join_scalar line ta tb in
    let ra = widen ctx ~from_:ta ~to_:ty ra in
    let rb = widen ctx ~from_:tb ~to_:ty rb in
    (emit_binop ctx (arith_binop op ty) ra rb, ty)
  | Binary (BRem, a, b) ->
    let ra, _ = lower_scalar ctx line a in
    let rb, _ = lower_scalar ctx line b in
    (emit_binop ctx Op.Rem ra rb, TInt)
  | Binary ((BAnd | BOr) as op, a, b) ->
    (* FORTRAN-style eager logical operators over normalized booleans. *)
    let ra, _ = lower_scalar ctx line a in
    let rb, _ = lower_scalar ctx line b in
    let zero = emit_const ctx (Value.I 0) in
    let na = emit_binop ctx Op.Ne ra zero in
    let nb = emit_binop ctx Op.Ne rb zero in
    let o = match op with BAnd -> Op.And | BOr -> Op.Or | _ -> assert false in
    (emit_binop ctx o na nb, TInt)
  | Binary ((BEq | BNe | BLt | BLe | BGt | BGe) as op, a, b) ->
    let ra, ta = lower_scalar ctx line a in
    let rb, tb = lower_scalar ctx line b in
    let ty = Sema.join_scalar line ta tb in
    let ra = widen ctx ~from_:ta ~to_:ty ra in
    let rb = widen ctx ~from_:tb ~to_:ty rb in
    (emit_binop ctx (cmp_binop op ty) ra rb, TInt)
  | Call (name, args) -> lower_call ctx line name args

and lower_address ctx line ~base ~dims subs =
  let one = emit_const ctx (Value.I 1) in
  let lower_sub s =
    let r, ty = lower_scalar ctx line s in
    match ty with
    | TInt -> emit_binop ctx Op.Sub r one
    | TFlt -> err line "array subscript must be int"
  in
  let offsets = List.map lower_sub subs in
  let offset =
    match offsets, dims with
    | [ o ], [ _ ] -> o
    | [ oi; oj ], [ _; d2 ] ->
      let d2r = emit_const ctx (Value.I d2) in
      let row = emit_binop ctx Op.Mul oi d2r in
      emit_binop ctx Op.Add row oj
    | [ oi; oj; ok ], [ _; d2; d3 ] ->
      let d2r = emit_const ctx (Value.I d2) in
      let d3r = emit_const ctx (Value.I d3) in
      let row = emit_binop ctx Op.Mul oi d2r in
      let plane = emit_binop ctx Op.Add row oj in
      let scaled = emit_binop ctx Op.Mul plane d3r in
      emit_binop ctx Op.Add scaled ok
    | _ -> err line "subscript count does not match array rank"
  in
  emit_binop ctx Op.Add base offset

and lower_call ctx line name args : Instr.reg * scalar_ty =
  match Sema.intrinsic_of_name name with
  | Some Sema.Sqrt ->
    let r, ty = lower_scalar ctx line (List.hd args) in
    let r = widen ctx ~from_:ty ~to_:TFlt r in
    (emit_unop ctx Op.Sqrt r, TFlt)
  | Some Sema.Abs ->
    let r, ty = lower_scalar ctx line (List.hd args) in
    let op = match ty with TInt -> Op.IAbs | TFlt -> Op.FAbs in
    (emit_unop ctx op r, ty)
  | Some (Sema.Min | Sema.Max) -> begin
    match args with
    | [ a; b ] ->
      let ra, ta = lower_scalar ctx line a in
      let rb, tb = lower_scalar ctx line b in
      let ty = Sema.join_scalar line ta tb in
      let ra = widen ctx ~from_:ta ~to_:ty ra in
      let rb = widen ctx ~from_:tb ~to_:ty rb in
      let op =
        match name, ty with
        | "min", TInt -> Op.Min
        | "min", TFlt -> Op.FMin
        | "max", TInt -> Op.Max
        | _, TInt -> Op.Max
        | _, TFlt -> Op.FMax
      in
      (emit_binop ctx op ra rb, ty)
    | _ -> err line "min/max expect two arguments"
  end
  | Some Sema.Mod -> begin
    match args with
    | [ a; b ] ->
      let ra, _ = lower_scalar ctx line a in
      let rb, _ = lower_scalar ctx line b in
      (emit_binop ctx Op.Rem ra rb, TInt)
    | _ -> err line "mod expects two arguments"
  end
  | Some Sema.To_float ->
    let r, ty = lower_scalar ctx line (List.hd args) in
    (widen ctx ~from_:ty ~to_:TFlt r, TFlt)
  | Some Sema.To_int ->
    let r, ty = lower_scalar ctx line (List.hd args) in
    (match ty with
    | TInt -> (r, TInt)
    | TFlt -> (emit_unop ctx Op.F2I r, TInt))
  | Some Sema.Emit ->
    let r, ty = lower_scalar ctx line (List.hd args) in
    Builder.call_void ctx.builder ~callee:"emit" [ r ];
    (r, ty)
  | None -> begin
    match Hashtbl.find_opt ctx.env.Sema.fsigs name with
    | None -> err line "call to undefined routine %s" name
    | Some { Sema.fparams; fret } ->
      let regs = lower_user_call_args ctx line name args fparams in
      (match fret with
      | Some t ->
        (* Each call site gets a fresh destination: calls are not
           expressions in the Section 2.2 sense and never participate in
           redundancy elimination. *)
        let dst = Builder.fresh_reg ctx.builder in
        Builder.emit ctx.builder (Instr.Call { dst = Some dst; callee = name; args = regs });
        (dst, t)
      | None -> err line "routine %s returns no value" name)
  end

and lower_user_call_args ctx line name args fparams =
  ignore name;
  List.map2
    (fun arg expected ->
      match expected, arg with
      | Array _, Var aname -> begin
        match lookup_var ctx line aname with
        | Array_var { base; _ } -> base
        | Scalar_var _ -> err line "expected array argument %s" aname
      end
      | Array _, _ -> err line "array arguments must be array names"
      | Scalar want, _ ->
        let r, ty = lower_scalar ctx line arg in
        widen ctx ~from_:ty ~to_:want r)
    args fparams

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

let lower_truth ctx line e =
  (* Conditions branch on "non-zero"; comparison results are already 0/1
     and arbitrary ints work unchanged. *)
  let r, ty = lower_scalar ctx line e in
  match ty with
  | TInt -> r
  | TFlt -> err line "condition must be int"

let assign_scalar ctx line name e =
  match lookup_var ctx line name with
  | Scalar_var { reg; ty } ->
    let r, rty = lower_scalar ctx line e in
    let r = widen ctx ~from_:rty ~to_:ty r in
    Builder.copy_to ctx.builder ~dst:reg ~src:r
  | Array_var _ -> err line "cannot assign to array %s" name

let rec lower_stmt ctx (s : stmt) =
  let line = s.line in
  let b = ctx.builder in
  match s.desc with
  | Decl (_, _, None) -> ()
  | Decl (name, Scalar _, Some e) -> assign_scalar ctx line name e
  | Decl (_, Array _, Some _) -> err line "arrays cannot have initializers"
  | Assign (name, e) -> assign_scalar ctx line name e
  | Assign_index (name, subs, e) -> begin
    match lookup_var ctx line name with
    | Array_var { base; elt; dims } ->
      let r, rty = lower_scalar ctx line e in
      let r = widen ctx ~from_:rty ~to_:elt r in
      let addr = lower_address ctx line ~base ~dims subs in
      Builder.store b ~addr ~src:r
    | Scalar_var _ -> err line "scalar %s used as an array" name
  end
  | If (cond, then_, else_) ->
    let c = lower_truth ctx line cond in
    let bthen = Builder.new_block b in
    let bjoin = Builder.new_block b in
    if else_ = [] then begin
      Builder.cbr b ~cond:c ~ifso:bthen ~ifnot:bjoin;
      Builder.switch b bthen;
      List.iter (lower_stmt ctx) then_;
      Builder.jump b bjoin
    end
    else begin
      let belse = Builder.new_block b in
      Builder.cbr b ~cond:c ~ifso:bthen ~ifnot:belse;
      Builder.switch b bthen;
      List.iter (lower_stmt ctx) then_;
      Builder.jump b bjoin;
      Builder.switch b belse;
      List.iter (lower_stmt ctx) else_;
      Builder.jump b bjoin
    end;
    Builder.switch b bjoin
  | While (cond, body) ->
    (* Rotated (guard + bottom-test) form, the shape the paper's Figure 3
       gives its loops: the body is executed at least once past the guard,
       which makes loop-invariant expressions down-safe in the preheader —
       the precondition for PRE to hoist them (Section 2). *)
    let bbody = Builder.new_block b in
    let bexit = Builder.new_block b in
    let c = lower_truth ctx line cond in
    Builder.cbr b ~cond:c ~ifso:bbody ~ifnot:bexit;
    Builder.switch b bbody;
    List.iter (lower_stmt ctx) body;
    let c' = lower_truth ctx line cond in
    Builder.cbr b ~cond:c' ~ifso:bbody ~ifnot:bexit;
    Builder.switch b bexit
  | For { var; start; stop; step; down; body } -> begin
    match lookup_var ctx line var with
    | Scalar_var { reg = ivar; ty = TInt } ->
      (* FORTRAN DO semantics: bounds and step evaluated once, snapshotted
         into variable names. *)
      let rstart, _ = lower_scalar ctx line start in
      Builder.copy_to b ~dst:ivar ~src:rstart;
      let rstop, _ = lower_scalar ctx line stop in
      let limit = Builder.fresh_reg b in
      Builder.copy_to b ~dst:limit ~src:rstop;
      let rstep =
        match step with
        | None -> emit_const ctx (Value.I 1)
        | Some e -> fst (lower_scalar ctx line e)
      in
      let stepr = Builder.fresh_reg b in
      Builder.copy_to b ~dst:stepr ~src:rstep;
      (* Rotated DO-loop shape, exactly Figure 3: a zero-trip guard at the
         top, the trip test at the bottom. Both tests are the same
         lexically-identical expression, hence share a name. *)
      let bbody = Builder.new_block b in
      let bexit = Builder.new_block b in
      let cmp = if down then Op.Ge else Op.Le in
      let c = emit_binop ctx cmp ivar limit in
      Builder.cbr b ~cond:c ~ifso:bbody ~ifnot:bexit;
      Builder.switch b bbody;
      List.iter (lower_stmt ctx) body;
      let next =
        if down then emit_binop ctx Op.Sub ivar stepr
        else emit_binop ctx Op.Add ivar stepr
      in
      Builder.copy_to b ~dst:ivar ~src:next;
      let c' = emit_binop ctx cmp ivar limit in
      Builder.cbr b ~cond:c' ~ifso:bbody ~ifnot:bexit;
      Builder.switch b bexit
    | _ -> err line "loop variable %s must be a declared int scalar" var
  end
  | Return None ->
    Builder.ret b None;
    let dead = Builder.new_block b in
    Builder.switch b dead
  | Return (Some e) ->
    let r, ty = lower_scalar ctx line e in
    let r =
      match ctx.ret with
      | Some want -> widen ctx ~from_:ty ~to_:want r
      | None -> err line "routine returns no value"
    in
    Builder.ret b (Some r);
    let dead = Builder.new_block b in
    Builder.switch b dead
  | Expr_stmt (Call (name, args))
    when not (Sema.is_intrinsic name)
         && (match Hashtbl.find_opt ctx.env.Sema.fsigs name with
            | Some { Sema.fret = None; _ } -> true
            | Some _ | None -> false) -> begin
    (* Void routine in statement position. *)
    match Hashtbl.find_opt ctx.env.Sema.fsigs name with
    | Some { Sema.fparams; _ } ->
      let regs = lower_user_call_args ctx line name args fparams in
      Builder.call_void b ~callee:name regs
    | None -> assert false
  end
  | Expr_stmt e -> ignore (lower_scalar ctx line e)

(* Collect every declaration in the (flat-scoped) body. *)
let rec collect_decls acc (s : stmt) =
  match s.desc with
  | Decl (name, ty, _) -> (name, ty, s.line) :: acc
  | If (_, a, b) -> List.fold_left collect_decls (List.fold_left collect_decls acc a) b
  | While (_, body) | For { body; _ } -> List.fold_left collect_decls acc body
  | Assign _ | Assign_index _ | Return _ | Expr_stmt _ -> acc

let lower_fn env (f : fndef) =
  let builder = Builder.start ~name:f.name ~nparams:(List.length f.params) in
  let vars = Hashtbl.create 16 in
  List.iteri
    (fun i (name, ty) ->
      match ty with
      | Scalar t -> Hashtbl.replace vars name (Scalar_var { reg = i; ty = t })
      | Array { elt; dims } -> Hashtbl.replace vars name (Array_var { base = i; elt; dims }))
    f.params;
  let ctx = { env; builder; vars; names = Hashtbl.create 64; ret = f.ret } in
  (* Materialize every local up front: arrays get their frame storage, and
     scalars a zero initialization, which guarantees the strictness (no use
     before definition) that SSA construction assumes. *)
  let decls = List.rev (List.fold_left collect_decls [] f.body) in
  List.iter
    (fun (name, ty, line) ->
      if Hashtbl.mem vars name then err line "duplicate declaration of %s" name;
      match ty with
      | Scalar t ->
        let reg = Builder.fresh_reg builder in
        let zero =
          emit_const ctx (match t with TInt -> Value.I 0 | TFlt -> Value.F 0.0)
        in
        Builder.copy_to builder ~dst:reg ~src:zero;
        Hashtbl.replace vars name (Scalar_var { reg; ty = t })
      | Array { elt; dims } ->
        let words = List.fold_left ( * ) 1 dims in
        let init = match elt with TInt -> Value.I 0 | TFlt -> Value.F 0.0 in
        let base = Builder.alloca ~init builder words in
        Hashtbl.replace vars name (Array_var { base; elt; dims }))
    decls;
  List.iter (lower_stmt ctx) f.body;
  (* Fall-through off the end: return a zero of the declared type. *)
  (match f.ret with
  | None -> Builder.ret builder None
  | Some t ->
    let zero = emit_const ctx (match t with TInt -> Value.I 0 | TFlt -> Value.F 0.0) in
    Builder.ret builder (Some zero));
  Builder.finish builder

let lower_program env (prog : program) =
  Program.create (List.map (lower_fn env) prog)
