(** Abstract syntax of the mini source language.

    A small imperative language standing in for the paper's FORTRAN front
    end: scalars of type [int]/[float], one- to three-dimensional arrays
    with 1-based, row-major indexing (so subscript lowering produces the
    [base + ((i-1)*n + (j-1))] address arithmetic of Section 2.1), FORTRAN
    [DO]-style counted loops, and call-by-reference array parameters. *)

type scalar_ty = TInt | TFlt

type vtype =
  | Scalar of scalar_ty
  | Array of { elt : scalar_ty; dims : int list }
      (** [dims] are compile-time extents, innermost last; 1-based. *)

type binary =
  | BAdd | BSub | BMul | BDiv | BRem
  | BAnd | BOr  (** short-circuit *)
  | BEq | BNe | BLt | BLe | BGt | BGe

type unary = UNeg | UNot

type expr =
  | Int_lit of int
  | Float_lit of float
  | Var of string
  | Index of string * expr list
  | Binary of binary * expr * expr
  | Unary of unary * expr
  | Call of string * expr list
      (** user routines and intrinsics: [sqrt], [abs], [min], [max], [mod],
          [float], [int], [emit] *)

type stmt = { desc : stmt_desc; line : int }

and stmt_desc =
  | Decl of string * vtype * expr option
  | Assign of string * expr
  | Assign_index of string * expr list * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of {
      var : string;
      start : expr;
      stop : expr;
      step : expr option;
      down : bool;  (** [downto] loops decrement and test [>=] *)
      body : stmt list;
    }
  | Return of expr option
  | Expr_stmt of expr

type fndef = {
  name : string;
  params : (string * vtype) list;
  ret : scalar_ty option;
  body : stmt list;
  line : int;
}

type program = fndef list

let scalar_ty_to_string = function TInt -> "int" | TFlt -> "float"

let vtype_to_string = function
  | Scalar t -> scalar_ty_to_string t
  | Array { elt; dims } ->
    Printf.sprintf "%s[%s]" (scalar_ty_to_string elt)
      (String.concat "," (List.map string_of_int dims))
