{
(* Lexer for the mini source language; see [Ast] for the grammar it feeds. *)
open Token

exception Error of { line : int; message : string }

let line_of lexbuf = lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum

let fail lexbuf fmt =
  Printf.ksprintf (fun message -> raise (Error { line = line_of lexbuf; message })) fmt

let keyword_table =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (k, t) -> Hashtbl.replace tbl k t)
    [ ("fn", FN); ("var", VAR); ("if", IF); ("else", ELSE); ("while", WHILE);
      ("for", FOR); ("to", TO); ("downto", DOWNTO); ("step", STEP);
      ("return", RETURN); ("int", TINT); ("float", TFLOAT) ];
  tbl
}

let digit = ['0'-'9']
let alpha = ['a'-'z' 'A'-'Z' '_']
let ident = alpha (alpha | digit)*
let int_lit = digit+
let float_lit = digit+ '.' digit* (['e' 'E'] ['+' '-']? digit+)?
              | digit+ ['e' 'E'] ['+' '-']? digit+

rule token = parse
  | [' ' '\t' '\r']      { token lexbuf }
  | '\n'                 { Lexing.new_line lexbuf; token lexbuf }
  | "//" [^ '\n']*       { token lexbuf }
  | "/*"                 { comment lexbuf; token lexbuf }
  | float_lit as f       { FLOAT (float_of_string f) }
  | int_lit as i         { INT (int_of_string i) }
  | ident as id          { match Hashtbl.find_opt keyword_table id with
                           | Some t -> t
                           | None -> IDENT id }
  | "&&"                 { ANDAND }
  | "||"                 { OROR }
  | "=="                 { EQEQ }
  | "!="                 { NEQ }
  | "<="                 { LE }
  | ">="                 { GE }
  | '<'                  { LT }
  | '>'                  { GT }
  | '='                  { ASSIGN }
  | '!'                  { BANG }
  | '('                  { LPAREN }
  | ')'                  { RPAREN }
  | '{'                  { LBRACE }
  | '}'                  { RBRACE }
  | '['                  { LBRACKET }
  | ']'                  { RBRACKET }
  | ','                  { COMMA }
  | ';'                  { SEMI }
  | ':'                  { COLON }
  | '+'                  { PLUS }
  | '-'                  { MINUS }
  | '*'                  { STAR }
  | '/'                  { SLASH }
  | '%'                  { PERCENT }
  | eof                  { EOF }
  | _ as c               { fail lexbuf "unexpected character %C" c }

and comment = parse
  | "*/"                 { () }
  | '\n'                 { Lexing.new_line lexbuf; comment lexbuf }
  | eof                  { fail lexbuf "unterminated comment" }
  | _                    { comment lexbuf }

{
(* Tokenize a whole string, pairing each token with its source line. The
   line is read after scanning the token, once the preceding newlines have
   been consumed; no token spans a newline, so this is the token's line. *)
let tokenize source =
  let lexbuf = Lexing.from_string source in
  let rec loop acc =
    match token lexbuf with
    | EOF -> List.rev ((EOF, line_of lexbuf) :: acc)
    | t -> loop ((t, line_of lexbuf) :: acc)
  in
  loop []
}
