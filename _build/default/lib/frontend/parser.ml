(** Hand-written recursive-descent parser for the mini language.

    Menhir is not available in this environment (see DESIGN.md), and the
    grammar is small enough that predictive parsing with one token of
    lookahead suffices. Precedence, loosest to tightest:
    [||] < [&&] < comparisons < [+ -] < [* / %] < unary < postfix. *)

open Ast

exception Error of { line : int; message : string }

type state = { tokens : (Token.t * int) array; mutable pos : int }

let fail_at st pos fmt =
  let line = snd st.tokens.(max 0 (min pos (Array.length st.tokens - 1))) in
  Printf.ksprintf (fun message -> raise (Error { line; message })) fmt

(* Report at the upcoming token (peek-style failures). *)
let fail st fmt = fail_at st st.pos fmt

(* Report at the token just consumed ([next]-style failures). *)
let fail_prev st fmt = fail_at st (st.pos - 1) fmt

let peek st = fst st.tokens.(st.pos)

let line st = snd st.tokens.(st.pos)

let advance st = st.pos <- st.pos + 1

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok =
  let got = peek st in
  if got = tok then advance st
  else fail st "expected %s but found %s" (Token.to_string tok) (Token.to_string got)

let expect_ident st =
  match next st with
  | Token.IDENT s -> s
  | t -> fail_prev st "expected identifier but found %s" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Types                                                               *)

let parse_scalar_ty st =
  match next st with
  | Token.TINT -> TInt
  | Token.TFLOAT -> TFlt
  | t -> fail_prev st "expected a type but found %s" (Token.to_string t)

let parse_vtype st =
  let elt = parse_scalar_ty st in
  if peek st = Token.LBRACKET then begin
    advance st;
    let rec dims acc =
      match next st with
      | Token.INT n ->
        if n <= 0 then fail st "array dimension must be positive, got %d" n;
        let acc = n :: acc in
        (match next st with
        | Token.COMMA -> dims acc
        | Token.RBRACKET -> List.rev acc
        | t -> fail_prev st "expected ',' or ']' in array type, found %s" (Token.to_string t))
      | t -> fail_prev st "expected array dimension, found %s" (Token.to_string t)
    in
    let dims = dims [] in
    if List.length dims > 3 then fail st "arrays of rank > 3 are not supported";
    Array { elt; dims }
  end
  else Scalar elt

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)

let rec parse_expr st = parse_or st

and parse_or st =
  let rec loop lhs =
    if peek st = Token.OROR then begin
      advance st;
      let rhs = parse_and st in
      loop (Binary (BOr, lhs, rhs))
    end
    else lhs
  in
  loop (parse_and st)

and parse_and st =
  let rec loop lhs =
    if peek st = Token.ANDAND then begin
      advance st;
      let rhs = parse_cmp st in
      loop (Binary (BAnd, lhs, rhs))
    end
    else lhs
  in
  loop (parse_cmp st)

and parse_cmp st =
  let lhs = parse_additive st in
  let op =
    match peek st with
    | Token.EQEQ -> Some BEq
    | Token.NEQ -> Some BNe
    | Token.LT -> Some BLt
    | Token.LE -> Some BLe
    | Token.GT -> Some BGt
    | Token.GE -> Some BGe
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    advance st;
    let rhs = parse_additive st in
    Binary (op, lhs, rhs)

and parse_additive st =
  let rec loop lhs =
    match peek st with
    | Token.PLUS ->
      advance st;
      loop (Binary (BAdd, lhs, parse_multiplicative st))
    | Token.MINUS ->
      advance st;
      loop (Binary (BSub, lhs, parse_multiplicative st))
    | _ -> lhs
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop lhs =
    match peek st with
    | Token.STAR ->
      advance st;
      loop (Binary (BMul, lhs, parse_unary st))
    | Token.SLASH ->
      advance st;
      loop (Binary (BDiv, lhs, parse_unary st))
    | Token.PERCENT ->
      advance st;
      loop (Binary (BRem, lhs, parse_unary st))
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | Token.MINUS ->
    advance st;
    Unary (UNeg, parse_unary st)
  | Token.BANG ->
    advance st;
    Unary (UNot, parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  match next st with
  | Token.INT i -> Int_lit i
  | Token.FLOAT f -> Float_lit f
  | Token.LPAREN ->
    let e = parse_expr st in
    expect st Token.RPAREN;
    e
  (* [float] and [int] double as conversion intrinsics: [float(i)]. *)
  | Token.TFLOAT ->
    expect st Token.LPAREN;
    let e = parse_expr st in
    expect st Token.RPAREN;
    Call ("float", [ e ])
  | Token.TINT ->
    expect st Token.LPAREN;
    let e = parse_expr st in
    expect st Token.RPAREN;
    Call ("int", [ e ])
  | Token.IDENT name -> begin
    match peek st with
    | Token.LPAREN ->
      advance st;
      Call (name, parse_args st)
    | Token.LBRACKET ->
      advance st;
      let subs = parse_subscripts st in
      Index (name, subs)
    | _ -> Var name
  end
  | t -> fail_prev st "expected an expression, found %s" (Token.to_string t)

and parse_args st =
  if peek st = Token.RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec loop acc =
      let acc = parse_expr st :: acc in
      match next st with
      | Token.COMMA -> loop acc
      | Token.RPAREN -> List.rev acc
      | t -> fail_prev st "expected ',' or ')' in argument list, found %s" (Token.to_string t)
    in
    loop []
  end

and parse_subscripts st =
  let rec loop acc =
    let acc = parse_expr st :: acc in
    match next st with
    | Token.COMMA -> loop acc
    | Token.RBRACKET -> List.rev acc
    | t -> fail_prev st "expected ',' or ']' in subscript, found %s" (Token.to_string t)
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

let rec parse_stmt st : stmt =
  let ln = line st in
  let mk desc = { desc; line = ln } in
  match peek st with
  | Token.VAR ->
    advance st;
    let name = expect_ident st in
    expect st Token.COLON;
    let ty = parse_vtype st in
    let init =
      if peek st = Token.ASSIGN then begin
        advance st;
        Some (parse_expr st)
      end
      else None
    in
    expect st Token.SEMI;
    mk (Decl (name, ty, init))
  | Token.IF ->
    advance st;
    expect st Token.LPAREN;
    let cond = parse_expr st in
    expect st Token.RPAREN;
    let then_ = parse_block st in
    let else_ =
      if peek st = Token.ELSE then begin
        advance st;
        if peek st = Token.IF then [ parse_stmt st ] else parse_block st
      end
      else []
    in
    mk (If (cond, then_, else_))
  | Token.WHILE ->
    advance st;
    expect st Token.LPAREN;
    let cond = parse_expr st in
    expect st Token.RPAREN;
    let body = parse_block st in
    mk (While (cond, body))
  | Token.FOR ->
    advance st;
    let var = expect_ident st in
    expect st Token.ASSIGN;
    let start = parse_expr st in
    let down =
      match next st with
      | Token.TO -> false
      | Token.DOWNTO -> true
      | t -> fail_prev st "expected 'to' or 'downto', found %s" (Token.to_string t)
    in
    let stop = parse_expr st in
    let step =
      if peek st = Token.STEP then begin
        advance st;
        Some (parse_expr st)
      end
      else None
    in
    let body = parse_block st in
    mk (For { var; start; stop; step; down; body })
  | Token.RETURN ->
    advance st;
    if peek st = Token.SEMI then begin
      advance st;
      mk (Return None)
    end
    else begin
      let e = parse_expr st in
      expect st Token.SEMI;
      mk (Return (Some e))
    end
  | Token.IDENT name -> begin
    advance st;
    match peek st with
    | Token.ASSIGN ->
      advance st;
      let e = parse_expr st in
      expect st Token.SEMI;
      mk (Assign (name, e))
    | Token.LBRACKET ->
      advance st;
      let subs = parse_subscripts st in
      expect st Token.ASSIGN;
      let e = parse_expr st in
      expect st Token.SEMI;
      mk (Assign_index (name, subs, e))
    | Token.LPAREN ->
      advance st;
      let args = parse_args st in
      expect st Token.SEMI;
      mk (Expr_stmt (Call (name, args)))
    | t -> fail st "expected '=', '[' or '(' after %s, found %s" name (Token.to_string t)
  end
  | t -> fail st "expected a statement, found %s" (Token.to_string t)

and parse_block st =
  expect st Token.LBRACE;
  let rec loop acc =
    if peek st = Token.RBRACE then begin
      advance st;
      List.rev acc
    end
    else loop (parse_stmt st :: acc)
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)

let parse_fn st =
  let ln = line st in
  expect st Token.FN;
  let name = expect_ident st in
  expect st Token.LPAREN;
  let params =
    if peek st = Token.RPAREN then begin
      advance st;
      []
    end
    else begin
      let rec loop acc =
        let pname = expect_ident st in
        expect st Token.COLON;
        let ty = parse_vtype st in
        let acc = (pname, ty) :: acc in
        match next st with
        | Token.COMMA -> loop acc
        | Token.RPAREN -> List.rev acc
        | t -> fail_prev st "expected ',' or ')' in parameter list, found %s" (Token.to_string t)
      in
      loop []
    end
  in
  let ret =
    if peek st = Token.COLON then begin
      advance st;
      Some (parse_scalar_ty st)
    end
    else None
  in
  let body = parse_block st in
  { name; params; ret; body; line = ln }

let parse_program tokens =
  let st = { tokens = Array.of_list tokens; pos = 0 } in
  let rec loop acc =
    match peek st with
    | Token.EOF -> List.rev acc
    | Token.FN -> loop (parse_fn st :: acc)
    | t -> fail st "expected 'fn' at top level, found %s" (Token.to_string t)
  in
  loop []

let parse_string source = parse_program (Lexer.tokenize source)
