(** Front-end entry points: source text to ILOC. *)

exception Error of { line : int; message : string }

let wrap f x =
  try f x with
  | Lexer.Error { line; message } -> raise (Error { line; message = "lexical error: " ^ message })
  | Parser.Error { line; message } -> raise (Error { line; message = "parse error: " ^ message })
  | Sema.Error { line; message } -> raise (Error { line; message = "type error: " ^ message })
  | Lower.Error { line; message } -> raise (Error { line; message = "lowering error: " ^ message })

let parse_string source = wrap Parser.parse_string source

(** Compile source text to an ILOC program with the front-end naming
    discipline of Section 2.2 in place. *)
let compile_string source =
  wrap
    (fun source ->
      let ast = Parser.parse_string source in
      let env = Sema.check_program ast in
      Lower.lower_program env ast)
    source

