(** Union-find over a dense integer universe.

    Used by the coalescing pass to merge register names and by GVN tests to
    check congruence-class agreement. Path compression plus union by rank. *)

type t

val create : int -> t
(** [create n] makes [n] singleton classes [0 .. n-1]. *)

val find : t -> int -> int
(** Class representative. *)

val union : t -> int -> int -> int
(** [union t a b] merges the classes of [a] and [b]; returns the surviving
    representative. *)

val union_keep_first : t -> int -> int -> unit
(** [union_keep_first t a b] merges so that [find t a] (old representative of
    [a]'s class) remains the representative. Needed when representatives carry
    meaning (e.g. the canonical register name). *)

val same : t -> int -> int -> bool
