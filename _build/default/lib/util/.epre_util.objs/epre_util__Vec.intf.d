lib/util/vec.mli:
