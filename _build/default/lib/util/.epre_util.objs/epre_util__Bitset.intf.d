lib/util/bitset.mli:
