type t = { bits : Bytes.t; n : int }

let bytes_for n = (n + 7) / 8

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative width";
  { bits = Bytes.make (bytes_for n) '\000'; n }

let width s = s.n

let check s i =
  if i < 0 || i >= s.n then
    invalid_arg (Printf.sprintf "Bitset: element %d out of universe [0,%d)" i s.n)

let mem s i =
  check s i;
  Char.code (Bytes.get s.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add s i =
  check s i;
  let b = i lsr 3 in
  Bytes.set s.bits b (Char.chr (Char.code (Bytes.get s.bits b) lor (1 lsl (i land 7))))

let remove s i =
  check s i;
  let b = i lsr 3 in
  Bytes.set s.bits b
    (Char.chr (Char.code (Bytes.get s.bits b) land lnot (1 lsl (i land 7)) land 0xff))

let copy s = { bits = Bytes.copy s.bits; n = s.n }

let equal a b = a.n = b.n && Bytes.equal a.bits b.bits

let is_empty s = Bytes.for_all (fun c -> c = '\000') s.bits

let full n =
  let s = { bits = Bytes.make (bytes_for n) '\255'; n } in
  (* Mask off the unused high bits of the last byte so [equal] stays exact. *)
  let rem = n land 7 in
  if rem <> 0 && n > 0 then begin
    let last = bytes_for n - 1 in
    Bytes.set s.bits last (Char.chr (Char.code (Bytes.get s.bits last) land ((1 lsl rem) - 1)))
  end;
  s

let same_width a b =
  if a.n <> b.n then invalid_arg "Bitset: width mismatch"

let binop f ~dst src =
  same_width dst src;
  for i = 0 to Bytes.length dst.bits - 1 do
    let c = f (Char.code (Bytes.get dst.bits i)) (Char.code (Bytes.get src.bits i)) in
    Bytes.set dst.bits i (Char.chr (c land 0xff))
  done

let union_into ~dst src = binop ( lor ) ~dst src
let inter_into ~dst src = binop ( land ) ~dst src
let diff_into ~dst src = binop (fun d s -> d land lnot s) ~dst src

let assign ~dst src =
  same_width dst src;
  Bytes.blit src.bits 0 dst.bits 0 (Bytes.length src.bits)

let clear s = Bytes.fill s.bits 0 (Bytes.length s.bits) '\000'

let popcount_byte c =
  let rec loop c acc = if c = 0 then acc else loop (c lsr 1) (acc + (c land 1)) in
  loop c 0

let count s =
  let acc = ref 0 in
  Bytes.iter (fun c -> acc := !acc + popcount_byte (Char.code c)) s.bits;
  !acc

let iter f s =
  for i = 0 to s.n - 1 do
    if Char.code (Bytes.get s.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0 then f i
  done

let elements s =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) s;
  List.rev !acc

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc
