type t = { parent : int array; rank : int array }

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0 }

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let r = find t p in
    t.parent.(i) <- r;
    r
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then ra
  else if t.rank.(ra) < t.rank.(rb) then begin
    t.parent.(ra) <- rb;
    rb
  end
  else begin
    t.parent.(rb) <- ra;
    if t.rank.(ra) = t.rank.(rb) then t.rank.(ra) <- t.rank.(ra) + 1;
    ra
  end

let union_keep_first t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then t.parent.(rb) <- ra

let same t a b = find t a = find t b
