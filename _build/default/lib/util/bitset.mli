(** Fixed-width mutable bit sets.

    The data-flow solvers in [Epre_analysis] and [Epre_pre] run classic
    bit-vector algorithms; this module provides the dense set representation
    they iterate over. All binary operations require both arguments to have
    the same width. *)

type t

val create : int -> t
(** [create n] is the empty set over universe [{0, ..., n-1}]. *)

val width : t -> int

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val copy : t -> t

val equal : t -> t -> bool

val is_empty : t -> bool

val full : int -> t
(** [full n] contains every element of the universe. *)

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] sets [dst := dst ∪ src]. *)

val inter_into : dst:t -> t -> unit

val diff_into : dst:t -> t -> unit
(** [diff_into ~dst src] sets [dst := dst \ src]. *)

val assign : dst:t -> t -> unit
(** [assign ~dst src] sets [dst := src]. *)

val clear : t -> unit

val count : t -> int

val iter : (int -> unit) -> t -> unit

val elements : t -> int list

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
