(* The paper's running example, Figures 2 through 10.

   Source (Figure 2):

       FUNCTION foo(y, z)
       S = 0
       X = y + z
       DO I = X, 100
         S = 1 + S + X
       ENDDO
       RETURN S

   This program walks the same pipeline the paper walks and prints the IR at
   each stage: translation (Fig. 3), pruned SSA with ranks (Fig. 4),
   reassociation after phi removal and forward propagation (Figs. 5-7),
   global value numbering (Fig. 8), PRE (Fig. 9), and coalescing (Fig. 10).

   Run with: dune exec examples/paper_example.exe *)

open Epre_ir

let source =
  {|
fn foo(y: int, z: int): int {
  var s: int;
  var x: int = y + z;
  var i: int;
  for i = x to 100 {
    s = 1 + s + x;
  }
  return s;
}
|}

let stage name r = Fmt.pr "=== %s ===@.%a@.@." name Pp.routine r

let () =
  let prog = Epre_frontend.Frontend.compile_string source in
  let foo = Program.find_exn prog "foo" in
  stage "Figure 3: intermediate form" foo;

  (* Figure 4: pruned SSA; copies folded into the phis. *)
  let foo = Epre_ssa.Ssa.build foo in
  Epre_ssa.Ssa_check.check foo;
  stage "Figure 4: pruned SSA form" foo;

  (* The ranks that guide reassociation: constants rank 0, loop-invariant
     values rank 1, loop-variant values the rank of their block. *)
  let ranks = Epre_reassoc.Rank.compute foo in
  Fmt.pr "ranks:";
  for v = 0 to foo.Routine.next_reg - 1 do
    let k = Epre_reassoc.Rank.of_reg ranks v in
    if k > 0 || v < List.length foo.Routine.params then Fmt.pr " r%d=%d" v k
  done;
  Fmt.pr "@.@.";

  (* Figures 5-7: phi removal by copies, forward propagation, and
     rank-sorted reassociation, in one pass. *)
  let foo =
    Epre_reassoc.Forward_prop.run
      ~config:{ Epre_reassoc.Expr_tree.default_config with distribute = false }
      foo
  in
  stage "Figures 5-7: after forward propagation and reassociation" foo;

  (* Figure 8: partition-based global value numbering; only names change. *)
  ignore (Epre_gvn.Gvn.run foo);
  stage "Figure 8: after value numbering" foo;

  (* Figure 9: partial redundancy elimination hoists the invariant
     expressions out of the loop and deletes the redundant computations. *)
  ignore (Epre_pre.Pre.run foo);
  stage "Figure 9: after partial redundancy elimination" foo;

  (* Figure 10: cleanup - constants folded, dead code swept, copies
     coalesced, empty blocks removed. *)
  ignore (Epre_opt.Constprop.run foo);
  ignore (Epre_opt.Peephole.run foo);
  ignore (Epre_opt.Dce.run foo);
  ignore (Epre_opt.Coalesce.run foo);
  ignore (Epre_opt.Clean.run foo);
  Routine.validate foo;
  stage "Figure 10: after coalescing" foo;

  (* The transformed routine still computes foo(2, 3) = sum. *)
  let result = Epre_interp.Interp.run prog ~entry:"foo" ~args:[ Value.I 2; Value.I 3 ] in
  (match result.Epre_interp.Interp.return_value with
  | Some v -> Fmt.pr "foo(2, 3) = %a  (%d dynamic operations)@." Value.pp v
                (Epre_interp.Counts.total result.Epre_interp.Interp.counts)
  | None -> assert false)
