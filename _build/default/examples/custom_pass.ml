(* Writing your own optimizer pass against the public API.

   The optimizer is a pipeline of ILOC -> ILOC filters (the paper's "each
   pass is a Unix filter" architecture). This example writes a small new
   pass from scratch — if-conversion of a constant-difference diamond into
   straight-line arithmetic — and composes it with the library's passes.

   The pass recognizes the shape

       cbr c -> THEN, ELSE
       THEN: x <- a        ELSE: x <- b
       JOIN: ... x ...

   where a and b are known constants, and rewrites the join to compute
   x = b + c' * (a - b) with c' = (c != 0), removing the branch. It uses
   only exported machinery: CFG traversal, SSA, def-use, the builder-free
   instruction constructors, and Routine.validate as the safety net.

   Run with: dune exec examples/custom_pass.exe *)

open Epre_ir

(* ------------------------------------------------------------------ *)
(* The custom pass *)

let block_is_constant_copy cfg du id =
  (* a block with exactly [t <- const v] (possibly preceded by nothing
     else) feeding one copy-like phi argument, ending in a jump *)
  match (Cfg.block cfg id).Block.instrs, (Cfg.block cfg id).Block.term with
  | [ Instr.Const { dst; value } ], Instr.Jump target ->
    ignore du;
    Some (dst, value, target)
  | _ -> None

let if_convert (r : Routine.t) =
  let r = Epre_ssa.Ssa.build r in
  let cfg = r.Routine.cfg in
  let du = Epre_analysis.Defuse.compute r in
  let converted = ref 0 in
  Cfg.iter_blocks
    (fun b ->
      match b.Block.term with
      | Instr.Cbr { cond; ifso; ifnot } -> begin
        match
          block_is_constant_copy cfg du ifso, block_is_constant_copy cfg du ifnot
        with
        | Some (t1, Value.I a, j1), Some (t2, Value.I b', j2)
          when j1 = j2 && ifso <> ifnot ->
          (* find the phi in the join merging exactly t1/t2 *)
          let join = Cfg.block cfg j1 in
          let phi =
            List.find_opt
              (function
                | Instr.Phi { args; _ } ->
                  List.sort compare (List.map snd args) = List.sort compare [ t1; t2 ]
                | _ -> false)
              join.Block.instrs
          in
          (match phi with
          | Some (Instr.Phi { dst; _ }) when List.length (Cfg.preds cfg).(j1) = 2 ->
            (* rewrite: in b, compute dst = b' + (cond != 0) * (a - b');
               then jump straight to the join *)
            let fresh () = Routine.fresh_reg r in
            let emit i = Block.append b i in
            let zero = fresh () in
            emit (Instr.Const { dst = zero; value = Value.I 0 });
            let norm = fresh () in
            emit (Instr.Binop { op = Op.Ne; dst = norm; a = cond; b = zero });
            let diff = fresh () in
            emit (Instr.Const { dst = diff; value = Value.I (a - b') });
            let scaled = fresh () in
            emit (Instr.Binop { op = Op.Mul; dst = scaled; a = norm; b = diff });
            let base = fresh () in
            emit (Instr.Const { dst = base; value = Value.I b' });
            emit (Instr.Binop { op = Op.Add; dst; a = base; b = scaled });
            b.Block.term <- Instr.Jump j1;
            (* the join keeps its other instructions; the phi is gone *)
            join.Block.instrs <-
              List.filter
                (function Instr.Phi { dst = d; _ } -> d <> dst | _ -> true)
                join.Block.instrs;
            Cfg.remove_block cfg ifso;
            Cfg.remove_block cfg ifnot;
            incr converted
          | _ -> ())
        | _ -> ()
      end
      | _ -> ())
    cfg;
  let r = Epre_ssa.Ssa.destroy r in
  Routine.validate r;
  !converted

(* ------------------------------------------------------------------ *)

let source =
  {|
fn classify(n: int): int {
  var s: int;
  var i: int;
  for i = 1 to n {
    var w: int;
    if (mod(i, 3) == 0) {
      w = 5;
    } else {
      w = 2;
    }
    s = s + w * i;
  }
  return s;
}

fn main(): int {
  var r: int = classify(60);
  emit(r);
  return r;
}
|}

let ops prog =
  let result = Epre_interp.Interp.run prog ~entry:"main" ~args:[] in
  ( Epre_interp.Counts.total result.Epre_interp.Interp.counts,
    result.Epre_interp.Interp.return_value )

let () =
  let prog = Epre_frontend.Frontend.compile_string source in
  let before, v0 = ops prog in
  (* our pass, then the library's cleanup passes *)
  let converted =
    List.fold_left (fun acc r -> acc + if_convert r) 0 (Program.routines prog)
  in
  List.iter
    (fun r ->
      ignore (Epre_opt.Naming.run r);
      ignore (Epre_pre.Pre.run r);
      ignore (Epre_opt.Constprop.run r);
      ignore (Epre_opt.Peephole.run r);
      ignore (Epre_opt.Dce.run r);
      ignore (Epre_opt.Coalesce.run r);
      ignore (Epre_opt.Clean.run r);
      Routine.validate r)
    (Program.routines prog);
  let after, v1 = ops prog in
  assert (v0 = v1);
  Fmt.pr "diamonds if-converted : %d@." converted;
  Fmt.pr "dynamic operations    : %d -> %d@." before after;
  Fmt.pr "@.classify after the custom pipeline:@.%a@." Pp.routine
    (Program.find_exn prog "classify")
