(* Multi-dimensional array addressing — the case Section 2.1 calls "quite
   important, since it arises routinely in multi-dimensional array
   addressing computations".

   A column sweep over a[i,j] recomputes base + ((i-1)*n + (j-1)) at every
   access. The (i-1)*n part is invariant in the inner loop; only the shape
   produced by reassociation lets PRE hoist it. This example contrasts
   [partial] (PRE alone, stuck with the front end's left-to-right shape)
   against [reassociation]/[distribution].

   Run with: dune exec examples/array_addressing.exe *)

let source =
  {|
fn colsum(n: int, a: float[30,30], out: float[30]) {
  var i: int;
  var j: int;
  for i = 1 to n {
    var s: float;
    s = 0.0;
    for j = 1 to n {
      s = s + a[i,j];         // address: base + ((i-1)*30 + (j-1))
    }
    out[i] = s;
  }
}

fn main(): float {
  var a: float[30,30];
  var out: float[30];
  var i: int;
  var j: int;
  for i = 1 to 30 {
    for j = 1 to 30 {
      a[i,j] = float(i) * 0.5 + float(j);
    }
  }
  colsum(30, a, out);
  var s: float;
  for i = 1 to 30 {
    s = s + out[i];
  }
  emit(s);
  return s;
}
|}

let () =
  let prog = Epre_frontend.Frontend.compile_string source in
  let counts = Hashtbl.create 4 in
  List.iter
    (fun level ->
      let p, _ = Epre.Pipeline.optimized_copy ~level prog in
      let result = Epre_interp.Interp.run p ~entry:"main" ~args:[] in
      let c = Epre_interp.Counts.total result.Epre_interp.Interp.counts in
      Hashtbl.replace counts level (p, c);
      Fmt.pr "%-14s: %7d dynamic operations@." (Epre.Pipeline.level_to_string level) c)
    Epre.Pipeline.all_levels;
  let show level =
    let p, _ = Hashtbl.find counts level in
    Fmt.pr "@.--- colsum at %s ---@.%a@."
      (Epre.Pipeline.level_to_string level)
      Epre_ir.Pp.routine
      (Epre_ir.Program.find_exn p "colsum")
  in
  (* Compare the inner loops: at [partial] the row offset (i-1)*30 is
     recomputed per element because the front end associated the address
     sum the wrong way; after reassociation it is hoisted. *)
  show Epre.Pipeline.Partial;
  show Epre.Pipeline.Distribution
