examples/paper_example.ml: Epre_frontend Epre_gvn Epre_interp Epre_ir Epre_opt Epre_pre Epre_reassoc Epre_ssa Fmt List Pp Program Routine Value
