examples/custom_pass.mli:
