examples/array_addressing.ml: Epre Epre_frontend Epre_interp Epre_ir Fmt Hashtbl List
