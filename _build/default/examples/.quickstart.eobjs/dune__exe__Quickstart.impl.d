examples/quickstart.ml: Epre Epre_frontend Epre_interp Epre_ir Fmt List Option
