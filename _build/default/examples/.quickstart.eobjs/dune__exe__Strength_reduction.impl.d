examples/strength_reduction.ml: Epre Epre_frontend Epre_interp Epre_ir Epre_opt Fmt List Pp Program
