examples/cse_hierarchy.ml: Epre_frontend Epre_interp Epre_ir Epre_opt Epre_pre Fmt List Program Routine Value
