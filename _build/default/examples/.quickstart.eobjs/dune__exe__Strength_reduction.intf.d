examples/strength_reduction.mli:
