examples/custom_pass.ml: Array Block Cfg Epre_analysis Epre_frontend Epre_interp Epre_ir Epre_opt Epre_pre Epre_ssa Fmt Instr List Op Pp Program Routine Value
