examples/quickstart.mli:
