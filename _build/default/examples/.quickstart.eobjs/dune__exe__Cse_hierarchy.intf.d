examples/cse_hierarchy.mli:
