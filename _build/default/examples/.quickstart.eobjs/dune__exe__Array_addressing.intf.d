examples/array_addressing.mli:
