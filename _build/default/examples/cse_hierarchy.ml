(* The Section 5.3 hierarchy of redundancy eliminators, demonstrated on the
   two motivating shapes of Section 2:

   - an if-then-else whose join recomputes x + y: invisible to
     dominator-based CSE (neither branch dominates the join's computation
     site... the earlier evaluations do not dominate it), caught by
     available-expression CSE and PRE alike;
   - a one-armed if followed by a recomputation: x + y is only *partially*
     redundant, so among the three only PRE removes it.

   Run with: dune exec examples/cse_hierarchy.exe *)

open Epre_ir

let source =
  {|
// x + y fully redundant at the join (both branches compute it)
fn join_case(p: int, x: int, y: int): int {
  var a: int;
  if (p > 0) {
    a = x + y;
  } else {
    a = (x + y) * 2;
  }
  return a + (x + y);
}

// x + y only partially redundant (one branch computes it)
fn partial_case(p: int, x: int, y: int): int {
  var a: int;
  a = 0;
  if (p > 0) {
    a = x + y;
  }
  return a + (x + y);
}

fn main(): int {
  var s: int;
  var i: int;
  for i = 0 to 40 {
    s = s + join_case(i - 20, i, i + 1) + partial_case(20 - i, i, i * 2);
  }
  emit(s);
  return s;
}
|}

type variant = { label : string; apply : Routine.t -> unit }

let variants =
  [
    { label = "dominator CSE (5.3 method 1)";
      apply = (fun r -> ignore (Epre_opt.Cse_dom.run r)) };
    { label = "available-expression CSE (method 2)";
      apply =
        (fun r ->
          ignore (Epre_opt.Naming.run r);
          ignore (Epre_opt.Cse_avail.run r)) };
    { label = "partial redundancy elimination (method 3)";
      apply =
        (fun r ->
          ignore (Epre_opt.Naming.run r);
          ignore (Epre_pre.Pre.run r)) };
  ]

let () =
  let prog = Epre_frontend.Frontend.compile_string source in
  List.iter
    (fun v ->
      let p = Program.copy prog in
      List.iter
        (fun r ->
          v.apply r;
          ignore (Epre_opt.Constprop.run r);
          ignore (Epre_opt.Peephole.run r);
          ignore (Epre_opt.Dce.run r);
          ignore (Epre_opt.Coalesce.run r);
          ignore (Epre_opt.Clean.run r))
        (Program.routines p);
      let result = Epre_interp.Interp.run p ~entry:"main" ~args:[] in
      Fmt.pr "%-42s: %6d dynamic operations (result %a)@." v.label
        (Epre_interp.Counts.total result.Epre_interp.Interp.counts)
        Fmt.(option Value.pp)
        result.Epre_interp.Interp.return_value)
    variants;
  Fmt.pr
    "@.Each method removes everything the one above it removes, and more —@.\
     the hierarchy of Section 5.3.@."
