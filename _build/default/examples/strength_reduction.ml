(* Strength reduction composing with reassociation — the interaction the
   paper predicts in Section 5.2: "Reassociation should let strength
   reduction introduce fewer distinct induction variables, particularly in
   code with complex subscripts".

   A column sweep over a 2-D array multiplies the induction variable by the
   row stride on every access. After the distribution pipeline exposes the
   products, strength reduction turns each loop multiply into an addition.

   Run with: dune exec examples/strength_reduction.exe *)

open Epre_ir

let source =
  {|
fn colsweep(n: int, a: float[25,25]): float {
  var s: float;
  var j: int;
  var i: int;
  for j = 1 to n {
    for i = 1 to n {
      s = s + a[i,j];        // address: base + ((i-1)*25 + (j-1))
    }
  }
  return s;
}

fn main(): float {
  var a: float[25,25];
  var i: int;
  var j: int;
  for i = 1 to 25 {
    for j = 1 to 25 {
      a[i,j] = float(i) * 0.5 - float(j) * 0.25;
    }
  }
  var r: float = colsweep(25, a);
  emit(r);
  return r;
}
|}

let report label prog =
  let result = Epre_interp.Interp.run prog ~entry:"main" ~args:[] in
  let c = result.Epre_interp.Interp.counts in
  Fmt.pr "%-28s: %6d operations, %5d multiplies@." label
    (Epre_interp.Counts.total c)
    c.Epre_interp.Counts.mults

let () =
  let prog = Epre_frontend.Frontend.compile_string source in
  report "unoptimized" prog;
  (* the paper's best pipeline *)
  let p, _ = Epre.Pipeline.optimized_copy ~level:Epre.Pipeline.Distribution prog in
  report "distribution pipeline" p;
  (* ... then the extension *)
  List.iter
    (fun r ->
      ignore (Epre_opt.Strength.run r);
      ignore (Epre_opt.Constprop.run r);
      ignore (Epre_opt.Peephole.run r);
      ignore (Epre_opt.Dce.run r);
      ignore (Epre_opt.Coalesce.run r);
      ignore (Epre_opt.Clean.run r))
    (Program.routines p);
  report "+ strength reduction" p;
  Fmt.pr "@.The inner loop of colsweep, multiplies reduced to additions:@.%a@."
    Pp.routine
    (Program.find_exn p "colsweep")
