(* Quickstart: compile a small program, optimize it at each of the paper's
   four levels, and watch the dynamic operation count drop.

   Run with: dune exec examples/quickstart.exe *)

let source =
  {|
fn smooth(n: int, a: float[32], b: float[32]) {
  var i: int;
  for i = 2 to n - 1 {
    b[i] = (a[i-1] + a[i] + a[i+1]) / 3.0;
  }
}

fn main(): float {
  var a: float[32];
  var b: float[32];
  var i: int;
  for i = 1 to 32 {
    a[i] = float(i * i) * 0.125;
  }
  smooth(32, a, b);
  var s: float;
  for i = 1 to 32 {
    s = s + b[i];
  }
  emit(s);
  return s;
}
|}

let run_and_count prog =
  let result = Epre_interp.Interp.run prog ~entry:"main" ~args:[] in
  ( result.Epre_interp.Interp.return_value,
    Epre_interp.Counts.total result.Epre_interp.Interp.counts )

let () =
  (* 1. Source -> ILOC through the front end (Section 2.2 naming
     discipline included). *)
  let prog = Epre_frontend.Frontend.compile_string source in
  let v0, c0 = run_and_count prog in
  Fmt.pr "unoptimized   : %8d dynamic ILOC operations@." c0;
  (* 2. Each optimization level works on its own copy. *)
  List.iter
    (fun level ->
      let optimized, _stats = Epre.Pipeline.optimized_copy ~level prog in
      let v, c = run_and_count optimized in
      assert (Option.is_some v && Option.is_some v0);
      Fmt.pr "%-14s: %8d dynamic ILOC operations@."
        (Epre.Pipeline.level_to_string level)
        c)
    Epre.Pipeline.all_levels;
  (* 3. Look at the fully optimized inner loop. *)
  let best, _ = Epre.Pipeline.optimized_copy ~level:Epre.Pipeline.Distribution prog in
  Fmt.pr "@.Optimized 'smooth' routine:@.%a@." Epre_ir.Pp.routine
    (Epre_ir.Program.find_exn best "smooth")
