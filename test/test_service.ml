(** The compile service: work-stealing deque invariants, pool ordering /
    exception / nesting semantics, parallel-equals-serial for the whole
    workload suite at every level (bare and supervised), cache hit
    replay, fingerprint invalidation, poisoned-entry fallback, the serve
    job protocol, and the crash-safety layer — journal round-trips,
    kill-and-resume byte identity, the graceful-degradation ladder,
    per-pass circuit breakers, and admission-control shedding. *)

open Epre_ir
module Deque = Epre_service.Deque
module Pool = Epre_service.Pool
module Cache = Epre_service.Cache
module Service = Epre_service.Service
module Journal = Epre_service.Journal
module Breaker = Epre_service.Breaker
module Pipeline = Epre.Pipeline
module Tjson = Epre_telemetry.Tjson

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "eprec-test-cache-%d-%d" (Unix.getpid ()) !n)
    in
    (* Never reuse state from an earlier (crashed) run. *)
    let rec rm p =
      if Sys.file_exists p then
        if Sys.is_directory p then begin
          Array.iter (fun f -> rm (Filename.concat p f)) (Sys.readdir p);
          Sys.rmdir p
        end
        else Sys.remove p
    in
    rm dir;
    dir

let program_text p = Ir_text.print_program p

(* ------------------------------------------------------------------ *)
(* Deque *)

let test_deque_lifo_fifo () =
  let d = Deque.create () in
  List.iter (Deque.push d) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "length" 4 (Deque.length d);
  (* Owner pops newest first... *)
  Alcotest.(check (option int)) "pop" (Some 4) (Deque.pop d);
  (* ...thieves steal oldest first. *)
  Alcotest.(check (option int)) "steal" (Some 1) (Deque.steal d);
  Alcotest.(check (option int)) "pop2" (Some 3) (Deque.pop d);
  Alcotest.(check (option int)) "steal2" (Some 2) (Deque.steal d);
  Alcotest.(check (option int)) "empty pop" None (Deque.pop d);
  Alcotest.(check (option int)) "empty steal" None (Deque.steal d)

let test_deque_grows () =
  let d = Deque.create () in
  for i = 1 to 1000 do Deque.push d i done;
  let seen = ref 0 in
  let rec drain () =
    match Deque.steal d with
    | Some v ->
      incr seen;
      Alcotest.(check int) "fifo order" !seen v;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "all drained" 1000 !seen

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_map_order () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let input = Array.init 100 (fun i -> i) in
          let out = Pool.map pool (fun i -> i * i) input in
          Array.iteri
            (fun i v ->
              Alcotest.(check int) (Printf.sprintf "jobs=%d idx=%d" jobs i)
                (i * i) v)
            out))
    [ 1; 2; 4 ]

exception Boom of int

let test_pool_exception () =
  Pool.with_pool ~jobs:2 (fun pool ->
      match
        Pool.map pool
          (fun i -> if i mod 3 = 2 then raise (Boom i) else i)
          (Array.init 20 (fun i -> i))
      with
      | _ -> Alcotest.fail "expected the batch to raise"
      | exception Boom i ->
        (* The lowest-indexed failure wins, whatever the schedule. *)
        Alcotest.(check int) "first failure" 2 i)

let test_pool_nested_map () =
  (* A task that submits its own batch must not deadlock: the submitter
     helps drain the pool while it waits. *)
  Pool.with_pool ~jobs:2 (fun pool ->
      let out =
        Pool.map_list pool
          (fun i ->
            Array.fold_left ( + ) 0
              (Pool.map pool (fun j -> (10 * i) + j) (Array.init 4 (fun j -> j))))
          [ 1; 2; 3 ]
      in
      Alcotest.(check (list int)) "nested sums" [ 46; 86; 126 ] out)

(* ------------------------------------------------------------------ *)
(* Parallel optimize == serial optimize *)

let test_parallel_identical_to_serial () =
  List.iter
    (fun level ->
      List.iter
        (fun w ->
          let serial = Epre_workloads.Workloads.compile w in
          let parallel = Epre_workloads.Workloads.compile w in
          let serial_stats, _ = Service.optimize_program ~level serial in
          let parallel_stats, _ =
            Pool.with_pool ~jobs:3 (fun pool ->
                Service.optimize_program ~pool ~level parallel)
          in
          Alcotest.(check string)
            (Printf.sprintf "%s at %s" w.Epre_workloads.Workloads.name
               (Pipeline.level_to_string level))
            (program_text serial) (program_text parallel);
          Alcotest.(check bool) "stats equal" true (serial_stats = parallel_stats))
        Epre_workloads.Workloads.all)
    Pipeline.all_levels

let test_parallel_supervised_identical () =
  let config = Epre_harness.Harness.default_config in
  List.iter
    (fun w ->
      let serial = Epre_workloads.Workloads.compile w in
      let parallel = Epre_workloads.Workloads.compile w in
      let s_stats, s_records =
        Pipeline.optimize_supervised ~config ~level:Pipeline.Distribution serial
      in
      let p_stats, p_records =
        Pool.with_pool ~jobs:3 (fun pool ->
            Service.optimize_supervised_program ~pool ~config
              ~level:Pipeline.Distribution parallel)
      in
      Alcotest.(check string) w.Epre_workloads.Workloads.name
        (program_text serial) (program_text parallel);
      Alcotest.(check bool) "stats equal" true (s_stats = p_stats);
      (* Records match the serial pass-major order exactly, up to wall
         clock. *)
      let shape (r : Epre_harness.Harness.record) =
        (r.pass, r.routine, r.outcome = Epre_harness.Harness.Passed)
      in
      Alcotest.(check bool) "record order" true
        (List.map shape s_records = List.map shape p_records))
    Epre_workloads.Workloads.all

let test_exec_validation_parallel_identical () =
  (* Exec-tier supervision runs truly parallel through the service entry
     point — no serial fallback — against per-worker frozen contexts, so
     the translation-validation reference observations (and therefore the
     results and records) match the serial run exactly. *)
  let w = Option.get (Epre_workloads.Workloads.find "saxpy") in
  let reference = Epre_workloads.Workloads.compile w in
  let prog = Epre_workloads.Workloads.compile w in
  let config =
    { Epre_harness.Harness.default_config with validation = Epre_harness.Harness.Exec }
  in
  let s_stats, s_records =
    Pipeline.optimize_supervised ~config ~level:Pipeline.Partial reference
  in
  let p_stats, p_records =
    Pool.with_pool ~jobs:2 (fun pool ->
        Service.optimize_supervised_program ~pool ~config
          ~level:Pipeline.Partial prog)
  in
  Alcotest.(check string) "exec-tier result" (program_text reference)
    (program_text prog);
  Alcotest.(check bool) "stats equal" true (s_stats = p_stats);
  let shape (r : Epre_harness.Harness.record) =
    (r.pass, r.routine, r.outcome = Epre_harness.Harness.Passed)
  in
  Alcotest.(check bool) "record order" true
    (List.map shape s_records = List.map shape p_records)

let test_failfast_parallel_identical () =
  (* keep_going = false with a chaos pass spliced in: the parallel path
     must raise Supervision_failed with the same record as serial
     fail-fast, and leave the program in the same pass-boundary state —
     workers past the failure point are rewound via their snapshot
     trails. *)
  let break_phi =
    List.find
      (fun (p : Epre_harness.Harness.named_pass) ->
        p.pass_name = "chaos:break-phi")
      (Epre_harness.Chaos.named_passes ())
  in
  let inject = [ (1, break_phi) ] in
  let config =
    { Epre_harness.Harness.default_config with
      keep_going = false;
      validation = Epre_harness.Harness.Ir }
  in
  let w = Option.get (Epre_workloads.Workloads.find "crout") in
  let run f prog =
    match f prog with
    | _ -> Alcotest.fail "expected Supervision_failed"
    | exception Epre_harness.Harness.Supervision_failed r -> r
  in
  let serial = Epre_workloads.Workloads.compile w in
  let s_record =
    run (Pipeline.optimize_supervised ~inject ~config ~level:Pipeline.Partial)
      serial
  in
  let parallel = Epre_workloads.Workloads.compile w in
  let p_record =
    Pool.with_pool ~jobs:3 (fun pool ->
        run
          (Service.optimize_supervised_program ~pool ~inject ~config
             ~level:Pipeline.Partial)
          parallel)
  in
  Alcotest.(check string) "failing pass" s_record.pass p_record.pass;
  Alcotest.(check string) "failing routine" s_record.routine p_record.routine;
  Alcotest.(check bool) "same rollback reason" true
    (s_record.outcome = p_record.outcome);
  Alcotest.(check string) "program state at failure" (program_text serial)
    (program_text parallel)

(* ------------------------------------------------------------------ *)
(* Deque contention / outcome protocol *)

let test_deque_contention () =
  (* Property test under real multi-domain contention: one owner pushes
     (and occasionally pops) while several stealer domains drain the FIFO
     end. Correctness means (a) no element is lost or duplicated, and
     (b) each stealer's sequence is strictly increasing — steals remove
     the oldest remaining element, and elements are pushed in order, so a
     decreasing step would be a linearizability violation. *)
  let d = Deque.create () in
  let n = 20_000 and stealers = 3 in
  let stop = Atomic.make false in
  let thieves =
    List.init stealers (fun _ ->
        Domain.spawn (fun () ->
            let acc = ref [] in
            let rec loop () =
              match Deque.steal d with
              | Some v ->
                acc := v :: !acc;
                loop ()
              | None -> if not (Atomic.get stop) then (Domain.cpu_relax (); loop ())
            in
            loop ();
            List.rev !acc))
  in
  let popped = ref [] in
  for i = 1 to n do
    Deque.push d i;
    if i mod 7 = 0 then
      match Deque.pop d with Some v -> popped := v :: !popped | None -> ()
  done;
  Atomic.set stop true;
  let stolen = List.map Domain.join thieves in
  let rec drain () =
    match Deque.pop d with
    | Some v ->
      popped := v :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  List.iteri
    (fun i s ->
      Alcotest.(check bool)
        (Printf.sprintf "stealer %d strictly increasing (%d steals)" i
           (List.length s))
        true (increasing s))
    stolen;
  let all = List.sort compare (List.concat (!popped :: stolen)) in
  Alcotest.(check bool) "no element lost or duplicated" true
    (all = List.init n (fun i -> i + 1))

let test_pool_outcome_mix () =
  (* Without halt, every job runs to an outcome: failures are contained
     per index, successes keep their slots, nothing is cancelled. *)
  Pool.with_pool ~jobs:2 (fun pool ->
      let out =
        Pool.map_outcomes pool
          (fun i -> if i mod 5 = 3 then raise (Boom i) else i * 2)
          (Array.init 23 (fun i -> i))
      in
      Array.iteri
        (fun i o ->
          match o with
          | Pool.Done v ->
            Alcotest.(check bool) "done slot" true (i mod 5 <> 3);
            Alcotest.(check int) "value" (i * 2) v
          | Pool.Failed (Boom j, _) ->
            Alcotest.(check int) "failed slot" i j;
            Alcotest.(check bool) "failing index" true (i mod 5 = 3)
          | Pool.Failed (e, _) ->
            Alcotest.failf "unexpected exception %s" (Printexc.to_string e)
          | Pool.Cancelled -> Alcotest.fail "nothing may be cancelled")
        out)

let test_pool_halt_done_prefix () =
  (* With halt, cancellation only strikes indexes above the lowest
     failure: everything below it is Done, deterministically, whatever
     the schedule — the serial fail-fast prefix. *)
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let fail_at = 11 in
          let out =
            Pool.map_outcomes ~halt:true pool
              (fun i -> if i >= fail_at && i mod 2 = 1 then raise (Boom i) else i)
              (Array.init 40 (fun i -> i))
          in
          let first_failed = ref max_int in
          Array.iteri
            (fun i o ->
              match o with
              | Pool.Failed _ when i < !first_failed -> first_failed := i
              | _ -> ())
            out;
          Alcotest.(check int) "lowest failure" fail_at !first_failed;
          for i = 0 to fail_at - 1 do
            match out.(i) with
            | Pool.Done v -> Alcotest.(check int) "prefix value" i v
            | _ -> Alcotest.failf "index %d below the failure must be Done" i
          done))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Cache *)

let test_cache_second_run_all_hits () =
  let dir = fresh_dir () in
  let cache = Cache.create ~dir () in
  let cold = Epre_workloads.Workloads.compile (Option.get (Epre_workloads.Workloads.find "crout")) in
  let cold_stats, cold_counts =
    Service.optimize_program ~cache ~level:Pipeline.Partial cold
  in
  Alcotest.(check int) "cold run misses everything"
    (List.length cold_stats) cold_counts.Service.misses;
  Alcotest.(check int) "cold run hits nothing" 0 cold_counts.Service.hits;
  let warm = Epre_workloads.Workloads.compile (Option.get (Epre_workloads.Workloads.find "crout")) in
  let warm_stats, warm_counts =
    Service.optimize_program ~cache ~level:Pipeline.Partial warm
  in
  Alcotest.(check int) "warm run hits everything"
    (List.length warm_stats) warm_counts.Service.hits;
  Alcotest.(check int) "warm run misses nothing" 0 warm_counts.Service.misses;
  Alcotest.(check string) "identical optimized text" (program_text cold)
    (program_text warm);
  Alcotest.(check bool) "identical stats" true (cold_stats = warm_stats)

let test_cache_survives_reopen () =
  (* A second Cache.t over the same directory (a new process, in effect)
     sees the first one's entries. *)
  let dir = fresh_dir () in
  let w = Option.get (Epre_workloads.Workloads.find "dot") in
  let first = Epre_workloads.Workloads.compile w in
  let _ =
    Service.optimize_program ~cache:(Cache.create ~dir ())
      ~level:Pipeline.Partial first
  in
  let second = Epre_workloads.Workloads.compile w in
  let stats, counts =
    Service.optimize_program ~cache:(Cache.create ~dir ())
      ~level:Pipeline.Partial second
  in
  Alcotest.(check int) "all hits after reopen" (List.length stats)
    counts.Service.hits;
  Alcotest.(check string) "same text" (program_text first) (program_text second)

let test_cache_fingerprint_invalidation () =
  (* Same input at a different level must miss: the fingerprint is part
     of the key. *)
  let dir = fresh_dir () in
  let cache = Cache.create ~dir () in
  let w = Option.get (Epre_workloads.Workloads.find "saxpy") in
  let _ =
    Service.optimize_program ~cache ~level:Pipeline.Partial
      (Epre_workloads.Workloads.compile w)
  in
  let stats, counts =
    Service.optimize_program ~cache ~level:Pipeline.Reassociation
      (Epre_workloads.Workloads.compile w)
  in
  Alcotest.(check int) "other level misses" (List.length stats)
    counts.Service.misses;
  Alcotest.(check bool) "fingerprints differ" true
    (Pipeline.fingerprint ~level:Pipeline.Partial
    <> Pipeline.fingerprint ~level:Pipeline.Reassociation)

let corrupt_entries dir f =
  let count = ref 0 in
  Array.iter
    (fun sub ->
      let subdir = Filename.concat dir sub in
      if Sys.is_directory subdir then
        Array.iter
          (fun file ->
            if Filename.check_suffix file ".json" then begin
              incr count;
              f (Filename.concat subdir file)
            end)
          (Sys.readdir subdir))
    (Sys.readdir dir);
  !count

let test_cache_poisoned_entry_recompiles () =
  let dir = fresh_dir () in
  let cache = Cache.create ~dir () in
  let w = Option.get (Epre_workloads.Workloads.find "euclid") in
  let reference = Epre_workloads.Workloads.compile w in
  let _ = Service.optimize_program ~cache ~level:Pipeline.Partial reference in
  (* Corrupt every stored entry in a different way each time. *)
  List.iter
    (fun corruption ->
      let n =
        corrupt_entries dir (fun path ->
            let oc = open_out_bin path in
            output_string oc corruption;
            close_out oc)
      in
      Alcotest.(check bool) "entries exist to corrupt" true (n > 0);
      let prog = Epre_workloads.Workloads.compile w in
      let stats, counts =
        Service.optimize_program ~cache ~level:Pipeline.Partial prog
      in
      (* Every poisoned entry is a miss (plus a deletion), and the result
         is the honest recompile. *)
      Alcotest.(check int) "poisoned -> recompile" (List.length stats)
        counts.Service.misses;
      Alcotest.(check string) "recompiled text equals reference"
        (program_text reference) (program_text prog))
    [ "not json at all";
      "{\"schema\":\"epre/cache-entry/v1\",\"key\":\"wrong\"}";
      "{\"schema\":\"something/else\",\"iloc\":\"x\"}" ]

let test_cache_eviction () =
  let dir = fresh_dir () in
  let cache = Cache.create ~dir ~max_entries:4 () in
  List.iteri
    (fun i w ->
      if i < 6 then
        ignore
          (Service.optimize_program ~cache ~level:Pipeline.Baseline
             (Epre_workloads.Workloads.compile w)))
    Epre_workloads.Workloads.all;
  let entries = corrupt_entries dir (fun _ -> ()) in
  Alcotest.(check bool)
    (Printf.sprintf "bounded (%d entries)" entries)
    true (entries <= 4)

let some_stats () =
  let prog =
    Epre_workloads.Workloads.compile
      (Option.get (Epre_workloads.Workloads.find "saxpy"))
  in
  List.hd (fst (Service.optimize_program ~level:Pipeline.Baseline prog))

let test_cache_byte_budget () =
  (* Entries whose total size exceeds --cache-max-bytes are evicted
     oldest-first down to the budget, independent of the entry-count
     bound. *)
  let dir = fresh_dir () in
  let budget = 8192 in
  let cache = Cache.create ~dir ~max_bytes:budget () in
  let stats = some_stats () in
  let fingerprint = Pipeline.fingerprint ~level:Pipeline.Baseline in
  for i = 1 to 12 do
    (* ~1.6 KB per entry: 12 of them overflow an 8 KB budget. *)
    let iloc = String.concat "\n" (List.init 40 (fun j ->
        Printf.sprintf "  r%d_%d <- add r%d, r%d" i j j (j + 1))) in
    let key = Cache.key ~iloc ~fingerprint in
    Cache.store cache ~key ~fingerprint ~iloc ~stats;
    (* Spread mtimes so oldest-first has a defined order even on coarse
       filesystem timestamp granularity. *)
    Unix.sleepf 0.002
  done;
  Alcotest.(check bool)
    (Printf.sprintf "bytes bounded (%d <= %d)" (Cache.byte_count cache) budget)
    true
    (Cache.byte_count cache <= budget);
  Alcotest.(check bool)
    (Printf.sprintf "entries evicted (%d < 12)" (Cache.entry_count cache))
    true
    (Cache.entry_count cache < 12)

let test_cache_sweep_temp () =
  (* A crashed writer's orphaned entry*.tmp is reclaimed by the sweep;
     a fresh one (a live concurrent writer's) survives. *)
  let dir = fresh_dir () in
  let cache = Cache.create ~dir () in
  let shard = Filename.concat dir "ab" in
  List.iter
    (fun d ->
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    [ dir; shard ];
  let stale = Filename.concat shard "entry-stale.tmp" in
  let fresh = Filename.concat shard "entry-fresh.tmp" in
  List.iter
    (fun p ->
      let oc = open_out_bin p in
      output_string oc "torn half-written entry";
      close_out oc)
    [ stale; fresh ];
  let old = Unix.gettimeofday () -. 3600.0 in
  Unix.utimes stale old old;
  let swept = Cache.sweep_temp cache in
  Alcotest.(check int) "one orphan swept" 1 swept;
  Alcotest.(check bool) "stale gone" false (Sys.file_exists stale);
  Alcotest.(check bool) "fresh survives" true (Sys.file_exists fresh)

let test_cache_concurrent_stores () =
  (* Two Cache.t instances over one directory (two processes, in effect)
     store overlapping keys from separate domains. The file lock keeps
     the entries and the accounting intact: a third, fresh handle must
     afterwards serve every routine as a hit, byte-identical to an
     undisturbed serial compile. *)
  let dir = fresh_dir () in
  let progs () =
    List.init 6 (fun i ->
        Epre_frontend.Frontend.compile_string (Epre_fuzz.Gen.source (i + 1)))
  in
  let writer () =
    let cache = Cache.create ~dir () in
    List.iter
      (fun p ->
        ignore (Service.optimize_program ~cache ~level:Pipeline.Partial p))
      (progs ())
  in
  let other = Domain.spawn writer in
  writer ();
  Domain.join other;
  let reference =
    List.map
      (fun p ->
        ignore (Service.optimize_program ~level:Pipeline.Partial p);
        program_text p)
      (progs ())
  in
  let cache = Cache.create ~dir () in
  List.iteri
    (fun i p ->
      let stats, counts =
        Service.optimize_program ~cache ~level:Pipeline.Partial p
      in
      Alcotest.(check int)
        (Printf.sprintf "program %d all hits" i)
        (List.length stats) counts.Service.hits;
      Alcotest.(check string)
        (Printf.sprintf "program %d text intact" i)
        (List.nth reference i) (program_text p))
    (progs ())

(* ------------------------------------------------------------------ *)
(* Failure policy *)

module Chaos = Epre_harness.Chaos

(* A job id the given fault deterministically strikes (or spares). *)
let chaos_id fault ~firing =
  let rec find i =
    let id = Printf.sprintf "job-%d" i in
    if Chaos.fires fault ~key:id = firing then id
    else if i > 10_000 then Alcotest.fail "no id found"
    else find (i + 1)
  in
  find 1

let iloc_job id =
  { Service.id;
    level = Pipeline.Partial;
    input =
      Service.Iloc
        (program_text
           (Epre_workloads.Workloads.compile
              (Option.get (Epre_workloads.Workloads.find "saxpy"))));
    emit = true }

let test_run_job_retry () =
  (* chaos:worker-raise fires on attempt 1 only; with a retry budget the
     job recovers, reports retried_ok, and emits the exact output of an
     undisturbed run. *)
  let id = chaos_id Chaos.Worker_raise ~firing:true in
  let reference = Service.run_job (iloc_job id) in
  Alcotest.(check bool) "reference ok" true reference.Service.ok;
  let policy = { Service.Policy.default with retries = 2; backoff_ms = 1.0 } in
  let r = Service.run_job ~policy ~chaos:[ Chaos.Worker_raise ] (iloc_job id) in
  Alcotest.(check bool) "ok after retry" true r.Service.ok;
  Alcotest.(check bool) "outcome retried_ok" true
    (r.Service.outcome = Service.Retried);
  Alcotest.(check int) "two attempts" 2 r.Service.attempts;
  Alcotest.(check bool) "same output as undisturbed" true
    (r.Service.iloc = reference.Service.iloc);
  (* Without a retry budget the same transient failure is an error. *)
  let r0 = Service.run_job ~chaos:[ Chaos.Worker_raise ] (iloc_job id) in
  Alcotest.(check bool) "no budget -> error" true
    ((not r0.Service.ok) && r0.Service.outcome = Service.Failed)

let test_run_job_timeout () =
  (* chaos:slow-job sleeps past the deadline; the poll hook cancels at a
     pass boundary and the outcome is timeout — never retried, retries
     are for transient failures only. *)
  let id = chaos_id Chaos.Slow_job ~firing:true in
  let policy =
    { Service.Policy.timeout_ms = Some 25.0; retries = 2; backoff_ms = 1.0;
      degrade = false }
  in
  let r = Service.run_job ~policy ~chaos:[ Chaos.Slow_job ] (iloc_job id) in
  Alcotest.(check bool) "not ok" false r.Service.ok;
  Alcotest.(check bool) "outcome timeout" true
    (r.Service.outcome = Service.Timed_out);
  Alcotest.(check int) "deadline is terminal: one attempt" 1 r.Service.attempts;
  (* A spared job under the same policy completes normally. *)
  let spared = chaos_id Chaos.Slow_job ~firing:false in
  let policy = { policy with timeout_ms = Some 10_000.0 } in
  let r2 = Service.run_job ~policy ~chaos:[ Chaos.Slow_job ] (iloc_job spared) in
  Alcotest.(check bool) "spared job ok" true
    (r2.Service.ok && r2.Service.outcome = Service.Succeeded)

let test_policy_classify_and_backoff () =
  Alcotest.(check bool) "chaos is transient" true
    (Service.Policy.classify (Chaos.Injected "x") = `Transient);
  Alcotest.(check bool) "I/O is transient" true
    (Service.Policy.classify (Sys_error "disk") = `Transient);
  Alcotest.(check bool) "pass bug is permanent" true
    (Service.Policy.classify (Failure "broken invariant") = `Permanent);
  let p = { Service.Policy.default with backoff_ms = 8.0 } in
  let d1 = Service.Policy.backoff_delay p ~id:"j" ~attempt:1 in
  let d1' = Service.Policy.backoff_delay p ~id:"j" ~attempt:1 in
  Alcotest.(check bool) "deterministic" true (d1 = d1');
  Alcotest.(check bool) "within jittered bounds" true
    (d1 >= 0.004 && d1 < 0.008);
  let d3 = Service.Policy.backoff_delay p ~id:"j" ~attempt:3 in
  Alcotest.(check bool) "grows exponentially" true (d3 >= 0.016 && d3 < 0.032)

(* ------------------------------------------------------------------ *)
(* Serve protocol *)

let test_job_parsing () =
  (match Service.job_of_line ~default_id:"d" {|{"workload":"saxpy"}|} with
  | Ok j ->
    Alcotest.(check string) "default id" "d" j.Service.id;
    Alcotest.(check bool) "default level" true (j.Service.level = Pipeline.Partial);
    Alcotest.(check bool) "default emit" true j.Service.emit
  | Error m -> Alcotest.failf "parse failed: %s" m);
  List.iter
    (fun line ->
      match Service.job_of_line ~default_id:"d" line with
      | Ok _ -> Alcotest.failf "expected %s to be rejected" line
      | Error _ -> ())
    [ "not json"; "{}"; {|{"workload":"a","iloc":"b"}|};
      {|{"workload":"a","level":"warp"}|} ]

let test_serve_stream () =
  let dir = fresh_dir () in
  let cache = Cache.create ~dir () in
  let input =
    String.concat "\n"
      [ {|{"id":"a","workload":"saxpy","emit":false}|};
        "";
        "garbage line";
        {|{"id":"b","workload":"saxpy","emit":false}|};
        {|{"id":"c","workload":"nope"}|} ]
    ^ "\n"
  in
  let in_path = Filename.temp_file "eprec-serve" ".jobs" in
  let out_path = Filename.temp_file "eprec-serve" ".out" in
  let oc = open_out_bin in_path in
  output_string oc input;
  close_out oc;
  let ic = open_in_bin in_path and out = open_out_bin out_path in
  let summary =
    Pool.with_pool ~jobs:2 (fun pool ->
        Service.serve ~cache ~batch:2 ~pool ~input:ic ~output:out ())
  in
  close_in_noerr ic;
  close_out_noerr out;
  Alcotest.(check int) "jobs" 4 summary.Service.jobs;
  Alcotest.(check int) "ok" 2 summary.Service.succeeded;
  Alcotest.(check int) "failed" 2 summary.Service.failed;
  Alcotest.(check bool) "repeat hit" true (summary.Service.total.Service.hits > 0);
  (* One result line per job, in input order, all valid JSON. *)
  let lines = ref [] in
  let ic = open_in out_path in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in_noerr ic);
  let lines = List.rev !lines in
  Alcotest.(check int) "result lines" 4 (List.length lines);
  let ids =
    List.map
      (fun l ->
        match Epre_telemetry.Tjson.parse l with
        | Ok j -> (
          match Epre_telemetry.Tjson.member "id" j with
          | Some (Epre_telemetry.Tjson.Str s) -> s
          | _ -> Alcotest.fail "result without id")
        | Error m -> Alcotest.failf "bad result line: %s" m)
      lines
  in
  Alcotest.(check (list string)) "input order" [ "a"; "job-2"; "b"; "c" ] ids;
  Sys.remove in_path;
  Sys.remove out_path

let test_serve_malformed_line_numbers () =
  (* A malformed line becomes an in-order error result carrying the
     *physical* input line number — blank lines count, so the number can
     differ from the job sequence number. *)
  let input =
    String.concat "\n"
      [ "";
        {|{"id":"good","workload":"saxpy","emit":false}|};
        "";
        "{ truncated";
        {|{"workload":"saxpy","level":"warp"}|};
        {|{"id":"tail","workload":"saxpy","emit":false}|} ]
    ^ "\n"
  in
  let in_path = Filename.temp_file "eprec-serve" ".jobs" in
  let out_path = Filename.temp_file "eprec-serve" ".out" in
  let oc = open_out_bin in_path in
  output_string oc input;
  close_out oc;
  let ic = open_in_bin in_path and out = open_out_bin out_path in
  let summary =
    Pool.with_pool ~jobs:2 (fun pool ->
        Service.serve ~pool ~input:ic ~output:out ())
  in
  close_in_noerr ic;
  close_out_noerr out;
  Alcotest.(check int) "jobs" 4 summary.Service.jobs;
  Alcotest.(check int) "failed" 2 summary.Service.failed;
  let lines = ref [] in
  let ic = open_in out_path in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in_noerr ic);
  let results =
    List.rev_map
      (fun l ->
        match Epre_telemetry.Tjson.parse l with
        | Error m -> Alcotest.failf "bad result line: %s" m
        | Ok j ->
          let str f =
            match Epre_telemetry.Tjson.member f j with
            | Some (Epre_telemetry.Tjson.Str s) -> Some s
            | _ -> None
          in
          let line =
            match Epre_telemetry.Tjson.member "line" j with
            | Some (Epre_telemetry.Tjson.Int n) -> Some n
            | _ -> None
          in
          (Option.get (str "id"), line, str "error"))
      !lines
  in
  (match results with
  | [ (id1, None, None); (id2, Some l2, Some e2); (id3, Some l3, Some e3);
      (id4, None, None) ] ->
    Alcotest.(check string) "first" "good" id1;
    Alcotest.(check string) "last" "tail" id4;
    (* Physical lines: blank line 1, good job on 2, blank 3, garbage on 4,
       bad level on 5, tail on 6. *)
    Alcotest.(check int) "garbage line number" 4 l2;
    Alcotest.(check int) "bad-level line number" 5 l3;
    Alcotest.(check bool) "error names its line" true
      (String.length e2 >= 7 && String.sub e2 0 7 = "line 4:");
    Alcotest.(check bool) "error names its line (2)" true
      (String.length e3 >= 7 && String.sub e3 0 7 = "line 5:");
    Alcotest.(check bool) "synthesized ids" true (id2 = "job-2" && id3 = "job-3")
  | rs -> Alcotest.failf "unexpected result shape (%d results)" (List.length rs));
  Sys.remove in_path;
  Sys.remove out_path

(* ------------------------------------------------------------------ *)
(* Crash safety: journal, kill/resume, ladder, breakers, shedding *)

(* Run [Service.serve] over [input] (a full NDJSON batch as one string),
   returning the summary (or [Error `Killed] if chaos:kill-self struck)
   and the emitted result lines. *)
let serve_to_lines ?cache ?batch ?policy ?chaos ?journal ?(resume = false)
    ?breaker ?max_pending ?shed_policy ~jobs input =
  let in_path = Filename.temp_file "eprec-serve" ".jobs" in
  let out_path = Filename.temp_file "eprec-serve" ".out" in
  let oc = open_out_bin in_path in
  output_string oc input;
  close_out oc;
  let ic = open_in_bin in_path and out = open_out_bin out_path in
  let res =
    match
      Pool.with_pool ~jobs (fun pool ->
          Service.serve ?cache ?batch ?policy ?chaos ?journal ~resume ?breaker
            ?max_pending ?shed_policy ~pool ~input:ic ~output:out ())
    with
    | s -> Ok s
    | exception Service.Killed -> Error `Killed
  in
  close_in_noerr ic;
  close_out_noerr out;
  let lines = ref [] in
  let ic = open_in out_path in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in_noerr ic);
  Sys.remove in_path;
  Sys.remove out_path;
  (res, List.rev !lines)

(* A result line with its latency field dropped — wall clock is the one
   legitimately non-reproducible field. *)
let norm_line l =
  match Tjson.parse l with
  | Ok (Tjson.Obj ms) ->
    Tjson.to_string (Tjson.Obj (List.filter (fun (k, _) -> k <> "latency_ms") ms))
  | Ok _ -> Alcotest.failf "result line is not an object: %s" l
  | Error m -> Alcotest.failf "bad result line: %s" m

let test_journal_roundtrip () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "journal.jsonl" in
  let j = Journal.open_ ~path () in
  Journal.append j
    [ Journal.entry ~kind:"accepted" ~seq:1 ~id:"a" ~key:"k1"
        ~fields:[ ("line", Tjson.Int 1) ] ();
      Journal.entry ~kind:"started" ~seq:1 ~id:"a" ~key:"k1"
        ~fields:[ ("fingerprint", Tjson.Str "fp") ] () ];
  Journal.append j
    [ Journal.entry ~kind:"done" ~seq:1 ~id:"a" ~key:"k1"
        ~fields:[ ("outcome", Tjson.Str "ok") ] () ];
  Journal.close j;
  (* A crash mid-append leaves a torn trailing line; load must skip it. *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "{\"type\":\"done\",\"seq\":2";
  close_out oc;
  let entries = Journal.load ~path in
  Alcotest.(check int) "torn tail skipped" 3 (List.length entries);
  (match entries with
  | first :: _ ->
    Alcotest.(check string) "kind" "accepted" first.Journal.kind;
    Alcotest.(check int) "seq" 1 first.Journal.seq;
    Alcotest.(check bool) "extra field preserved" true
      (List.mem_assoc "line" first.Journal.fields)
  | [] -> Alcotest.fail "no entries");
  Alcotest.(check (list (pair int string)))
    "only done/failed count as emitted"
    [ (1, "k1") ]
    (Journal.emitted entries);
  (* Every record is stamped with the writing journal's run id, and the
     run filter keeps foreign runs out of the replay set. *)
  let r = match Journal.last_run entries with
    | Some r -> r
    | None -> Alcotest.fail "records not run-stamped"
  in
  List.iter
    (fun e ->
      Alcotest.(check (option string)) "stamped" (Some r) (Journal.run_of e))
    entries;
  Alcotest.(check (list (pair int string)))
    "emitted filtered by run id" [ (1, "k1") ]
    (Journal.emitted ~run:r entries);
  Alcotest.(check (list (pair int string)))
    "foreign run id matches nothing" []
    (Journal.emitted ~run:"someone-else" entries)

let test_journal_run_isolation () =
  (* The stale-journal hazard: batch 1 completes (done records on disk);
     the same input is re-served in the same cache dir WITHOUT --resume;
     that run is killed mid-way and resumed. The resume must not let
     batch 1's done records — same (seq, key)! — masquerade as batch 2's
     and silently swallow its lines. *)
  let dir = fresh_dir () in
  let path = Filename.concat dir "journal.jsonl" in
  let j1 = Journal.open_ ~path () in
  Journal.append j1
    [ Journal.entry ~kind:"done" ~seq:1 ~id:"a" ~key:"k1"
        ~fields:[ ("outcome", Tjson.Str "ok") ] () ];
  Journal.close j1;
  (* Batch 2, fresh serve: the completed run's journal is truncated (no
     live holder) and records carry a new run id. *)
  let j2 = Journal.open_ ~path () in
  Alcotest.(check int) "fresh open truncates a stale journal" 0
    (List.length (Journal.entries j2));
  Alcotest.(check bool) "fresh open mints a new run id" true
    (Journal.run j2 <> Journal.run j1);
  Journal.append j2
    [ Journal.entry ~kind:"started" ~seq:1 ~id:"a" ~key:"k1" () ];
  Journal.close j2;
  (* "Crash" after started; --resume continues batch 2's run id and must
     re-run seq 1: no done record in THIS run. *)
  let j3 = Journal.open_ ~mode:`Resume ~path () in
  Alcotest.(check string) "resume continues the last run id"
    (Journal.run j2) (Journal.run j3);
  Alcotest.(check (list (pair int string)))
    "stale done records do not count as emitted" []
    (Journal.emitted ~run:(Journal.run j3) (Journal.entries j3));
  (* The resumed incarnation finishes the job; a chained resume now sees
     it as emitted. *)
  Journal.append j3
    [ Journal.entry ~kind:"done" ~seq:1 ~id:"a" ~key:"k1"
        ~fields:[ ("outcome", Tjson.Str "ok") ] () ];
  Journal.close j3;
  let j4 = Journal.open_ ~mode:`Resume ~path () in
  Alcotest.(check (list (pair int string)))
    "chained resume honors the whole logical batch"
    [ (1, "k1") ]
    (Journal.emitted ~run:(Journal.run j4) (Journal.entries j4));
  Journal.close j4

let test_serve_kill_resume_byte_identical () =
  (* The crash drill, in-process: a run killed mid-batch by
     chaos:kill-self, resumed from its journal, must complete the batch
     such that killed-output ++ resumed-output is byte-identical (modulo
     wall clock) to an undisturbed run over the same input. *)
  let input =
    String.concat ""
      (List.init 12 (fun i ->
           Printf.sprintf
             "{\"id\":\"j%d\",\"workload\":\"saxpy\",\"level\":\"distribution\",\"emit\":false}\n"
             (i + 1)))
  in
  let ref_res, ref_lines =
    serve_to_lines ~cache:(Cache.create ~dir:(fresh_dir ()) ()) ~batch:4
      ~jobs:1 input
  in
  (match ref_res with
  | Ok s -> Alcotest.(check int) "reference all ok" 12 s.Service.succeeded
  | Error `Killed -> Alcotest.fail "reference run must not be killed");
  let saved = !Chaos.default_seed in
  Fun.protect ~finally:(fun () -> Chaos.default_seed := saved) @@ fun () ->
  (* Seed 1 deterministically fires kill-self on a later batch, so some
     output precedes the crash. *)
  Chaos.default_seed := 1;
  let dir = fresh_dir () in
  let jpath = Filename.concat dir "journal.jsonl" in
  let journal = Journal.open_ ~path:jpath () in
  let killed_res, killed_lines =
    serve_to_lines ~cache:(Cache.create ~dir ()) ~batch:4 ~jobs:1
      ~chaos:[ Chaos.Kill_self ] ~journal input
  in
  Journal.close journal;
  Alcotest.(check bool) "killed mid-batch" true (killed_res = Error `Killed);
  let emitted = List.length killed_lines in
  Alcotest.(check bool)
    (Printf.sprintf "partial output (%d lines)" emitted)
    true
    (emitted > 0 && emitted < 12);
  Chaos.default_seed := saved;
  let journal = Journal.open_ ~mode:`Resume ~path:jpath () in
  let resume_res, resume_lines =
    serve_to_lines ~cache:(Cache.create ~dir ()) ~batch:4 ~jobs:1 ~journal
      ~resume:true input
  in
  Journal.close journal;
  (match resume_res with
  | Ok s ->
    Alcotest.(check int) "emitted prefix replayed, not re-run" emitted
      s.Service.replayed;
    Alcotest.(check int) "in-flight jobs re-run exactly once" (12 - emitted)
      s.Service.jobs;
    Alcotest.(check int) "no failures" 0 s.Service.failed
  | Error `Killed -> Alcotest.fail "resume run must complete");
  Alcotest.(check (list string)) "merged output == undisturbed run"
    (List.map norm_line ref_lines)
    (List.map norm_line (killed_lines @ resume_lines))

(* The lowest level whose pipeline contains the deterministically
   poisoned pass — requesting it guarantees chaos:pass-poison strikes. *)
let poisoned_level () =
  let target =
    match Service.poisoned_pass () with
    | Some p -> p
    | None -> Alcotest.fail "no poison candidates"
  in
  let level =
    List.find
      (fun l -> List.mem target (Pipeline.level_stages ~level:l))
      Pipeline.all_levels
  in
  (target, level)

let test_degraded_byte_identical_and_oracle () =
  (* Ladder property, over fuzz programs: a degraded result must be
     byte-identical to a direct serial run at the degraded level, and
     observationally equal to the unoptimized (-O0) program. *)
  let _, requested = poisoned_level () in
  let policy = { Service.Policy.default with degrade = true } in
  let fuel = Epre_harness.Harness.default_config.Epre_harness.Harness.fuel in
  List.iter
    (fun i ->
      let src = Epre_fuzz.Gen.source i in
      let job level =
        { Service.id = Printf.sprintf "fuzz-%d" i; level;
          input = Service.Source src; emit = true }
      in
      let r =
        Service.run_job ~policy ~chaos:[ Chaos.Pass_poison ] (job requested)
      in
      Alcotest.(check bool) "served" true r.Service.ok;
      Alcotest.(check bool) "outcome degraded" true
        (r.Service.outcome = Service.Degraded);
      Alcotest.(check bool) "served below request" true
        (r.Service.job_level < requested
        && r.Service.requested = Some requested);
      let direct = Service.run_job (job r.Service.job_level) in
      Alcotest.(check bool) "byte-identical to direct run at degraded level"
        true
        (r.Service.iloc = direct.Service.iloc);
      let reference = Epre_frontend.Frontend.compile_string src in
      let optimized = Ir_text.parse_program (Option.get r.Service.iloc) in
      Alcotest.(check bool) "oracle-equal to -O0" true
        (Epre_harness.Harness.obs_equal
           (Epre_harness.Harness.observe ~fuel reference)
           (Epre_harness.Harness.observe ~fuel optimized)))
    [ 1; 2; 3; 4; 5 ]

let test_breaker_opens_and_short_circuits () =
  (* Three consecutive poisoned failures open the pass's breaker; from
     then on jobs skip the poisoned rung entirely (one attempt, served
     degraded) — 100% completion, no failures. *)
  let target, requested = poisoned_level () in
  let breaker = Breaker.create ~threshold:3 ~probe_after:100 () in
  let policy = { Service.Policy.default with degrade = true } in
  let results =
    List.init 6 (fun i ->
        Service.run_job ~policy ~chaos:[ Chaos.Pass_poison ] ~breaker
          { (iloc_job (Printf.sprintf "bp%d" i)) with Service.level = requested })
  in
  List.iteri
    (fun i r ->
      Alcotest.(check bool) (Printf.sprintf "job %d completes" i) true
        (r.Service.ok && r.Service.outcome = Service.Degraded))
    results;
  let last = List.nth results 5 in
  Alcotest.(check int) "open breaker short-circuits: one attempt" 1
    last.Service.attempts;
  Alcotest.(check bool) "ladder pays an extra attempt before it opens" true
    ((List.hd results).Service.attempts > 1);
  Alcotest.(check bool)
    (Printf.sprintf "breaker open for %s" target)
    true
    (List.mem_assoc target (Breaker.snapshot breaker)
    && List.assoc target (Breaker.snapshot breaker) = "open")

let test_breaker_half_open_probe () =
  let b = Breaker.create ~threshold:2 ~probe_after:2 () in
  let passes = [ "p"; "q" ] in
  Alcotest.(check (list string)) "closed: nothing excluded" []
    (Breaker.excluded b ~passes);
  Breaker.failure b ~pass:"p";
  Breaker.failure b ~pass:"p";
  Alcotest.(check (list string)) "open after threshold" [ "p" ]
    (Breaker.excluded b ~passes);
  Alcotest.(check (list string)) "second skipped execution" [ "p" ]
    (Breaker.excluded b ~passes);
  (* probe_after = 2 executions have been skipped: the timer is spent,
     the breaker goes half-open, and the pass is *not* excluded — that
     run is its probe. *)
  Alcotest.(check (list string)) "half-open probe runs the pass" []
    (Breaker.excluded b ~passes);
  Breaker.failure b ~pass:"p";
  Alcotest.(check (list string)) "failed probe re-opens" [ "p" ]
    (Breaker.excluded b ~passes);
  Alcotest.(check (list string)) "re-opened: full countdown again" [ "p" ]
    (Breaker.excluded b ~passes);
  Alcotest.(check (list string)) "probe again" []
    (Breaker.excluded b ~passes);
  Breaker.success b ~pass:"p";
  Alcotest.(check (list string)) "successful probe closes" []
    (Breaker.excluded b ~passes);
  Alcotest.(check (list (pair string string))) "snapshot" [ ("p", "closed") ]
    (Breaker.snapshot b)

let test_serve_shed_deterministic () =
  (* Overload with a bounded queue and reject policy: sheds are
     deterministic — same jobs shed, in input order, on every run. *)
  let input =
    String.concat ""
      (List.init 10 (fun i ->
           Printf.sprintf "{\"id\":\"s%d\",\"workload\":\"saxpy\",\"emit\":false}\n"
             (i + 1)))
  in
  let run () =
    serve_to_lines ~batch:2 ~jobs:1 ~max_pending:2 ~shed_policy:`Reject input
  in
  let res1, lines1 = run () in
  let res2, lines2 = run () in
  let s1 = match res1 with Ok s -> s | Error `Killed -> Alcotest.fail "killed" in
  let s2 = match res2 with Ok s -> s | Error `Killed -> Alcotest.fail "killed" in
  Alcotest.(check bool) "queue pressure sheds" true (s1.Service.shed > 0);
  Alcotest.(check int) "every job accounted" 10 s1.Service.jobs;
  Alcotest.(check int) "served + shed = jobs" 10
    (s1.Service.succeeded + s1.Service.shed);
  Alcotest.(check int) "shed not counted as failed" 0 s1.Service.failed;
  Alcotest.(check int) "deterministic shed count" s1.Service.shed
    s2.Service.shed;
  Alcotest.(check (list string)) "deterministic output" (List.map norm_line lines1)
    (List.map norm_line lines2);
  (* Input order survives shedding, and shed lines are well-formed. *)
  let ids =
    List.map
      (fun l ->
        match Tjson.parse l with
        | Ok j -> (
          match Tjson.member "id" j with
          | Some (Tjson.Str s) -> s
          | _ -> Alcotest.fail "result without id")
        | Error m -> Alcotest.failf "bad result line: %s" m)
      lines1
  in
  Alcotest.(check (list string)) "input order"
    (List.init 10 (fun i -> Printf.sprintf "s%d" (i + 1)))
    ids;
  let sheds =
    List.filter
      (fun l ->
        match Tjson.parse l with
        | Ok j -> Tjson.member "outcome" j = Some (Tjson.Str "shed")
        | Error _ -> false)
      lines1
  in
  Alcotest.(check int) "shed lines match the summary" s1.Service.shed
    (List.length sheds)

let test_cache_sweep_spares_locked () =
  (* A stale-looking temp file whose writer is alive (holds its advisory
     lock) survives the sweep; the truly orphaned one is reclaimed. *)
  let dir = fresh_dir () in
  let cache = Cache.create ~dir () in
  let shard = Filename.concat dir "ab" in
  List.iter
    (fun d ->
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    [ dir; shard ];
  let held = Filename.concat shard "entry-held.tmp" in
  let stale = Filename.concat shard "entry-stale.tmp" in
  List.iter
    (fun p ->
      let oc = open_out_bin p in
      output_string oc "half-written entry";
      close_out oc)
    [ held; stale ];
  let old = Unix.gettimeofday () -. 3600.0 in
  Unix.utimes held old old;
  Unix.utimes stale old old;
  let ready = Filename.concat dir "ready" in
  (* The live writer must be a real separate process (fork is unavailable
     once domains exist): a helper that locks the file, signals
     readiness, and lingers until killed. *)
  let helper =
    Filename.concat (Filename.dirname Sys.executable_name) "lockhold.exe"
  in
  let pid =
    Unix.create_process helper [| helper; held; ready |] Unix.stdin Unix.stdout
      Unix.stderr
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] pid))
    (fun () ->
      let rec wait_ready n =
        if not (Sys.file_exists ready) then
          if n > 1000 then Alcotest.fail "helper never took the lock"
          else begin
            Unix.sleepf 0.005;
            wait_ready (n + 1)
          end
      in
      wait_ready 0;
      let swept = Cache.sweep_temp cache in
      Alcotest.(check int) "only the orphan swept" 1 swept;
      Alcotest.(check bool) "held file spared" true (Sys.file_exists held);
      Alcotest.(check bool) "orphan gone" false (Sys.file_exists stale))

let suite =
  [
    Alcotest.test_case "deque lifo/fifo" `Quick test_deque_lifo_fifo;
    Alcotest.test_case "deque grows" `Quick test_deque_grows;
    Alcotest.test_case "pool preserves order" `Quick test_pool_map_order;
    Alcotest.test_case "pool re-raises first failure" `Quick test_pool_exception;
    Alcotest.test_case "pool nested map" `Quick test_pool_nested_map;
    Alcotest.test_case "parallel == serial (all workloads x levels)" `Slow
      test_parallel_identical_to_serial;
    Alcotest.test_case "parallel supervised == serial" `Slow
      test_parallel_supervised_identical;
    Alcotest.test_case "exec tier parallel == serial" `Quick
      test_exec_validation_parallel_identical;
    Alcotest.test_case "fail-fast parallel == serial" `Quick
      test_failfast_parallel_identical;
    Alcotest.test_case "deque multi-domain contention" `Quick
      test_deque_contention;
    Alcotest.test_case "outcome protocol contains failures" `Quick
      test_pool_outcome_mix;
    Alcotest.test_case "halt preserves the done prefix" `Quick
      test_pool_halt_done_prefix;
    Alcotest.test_case "second run all cache hits" `Quick
      test_cache_second_run_all_hits;
    Alcotest.test_case "cache survives reopen" `Quick test_cache_survives_reopen;
    Alcotest.test_case "fingerprint invalidation" `Quick
      test_cache_fingerprint_invalidation;
    Alcotest.test_case "poisoned entry recompiles" `Quick
      test_cache_poisoned_entry_recompiles;
    Alcotest.test_case "eviction bounds entries" `Quick test_cache_eviction;
    Alcotest.test_case "eviction bounds bytes" `Quick test_cache_byte_budget;
    Alcotest.test_case "orphaned temp sweep" `Quick test_cache_sweep_temp;
    Alcotest.test_case "concurrent stores, shared dir" `Quick
      test_cache_concurrent_stores;
    Alcotest.test_case "retry absorbs transient fault" `Quick
      test_run_job_retry;
    Alcotest.test_case "deadline bounds a slow job" `Quick
      test_run_job_timeout;
    Alcotest.test_case "classifier and backoff" `Quick
      test_policy_classify_and_backoff;
    Alcotest.test_case "job parsing" `Quick test_job_parsing;
    Alcotest.test_case "serve streams in order" `Quick test_serve_stream;
    Alcotest.test_case "malformed lines carry line numbers" `Quick
      test_serve_malformed_line_numbers;
    Alcotest.test_case "journal round-trips, tolerates torn tail" `Quick
      test_journal_roundtrip;
    Alcotest.test_case "stale journal cannot satisfy a later resume" `Quick
      test_journal_run_isolation;
    Alcotest.test_case "kill-and-resume completes byte-identically" `Quick
      test_serve_kill_resume_byte_identical;
    Alcotest.test_case "degraded == direct run at lower level, oracle-equal"
      `Slow test_degraded_byte_identical_and_oracle;
    Alcotest.test_case "breaker opens and short-circuits the ladder" `Quick
      test_breaker_opens_and_short_circuits;
    Alcotest.test_case "breaker half-open probe protocol" `Quick
      test_breaker_half_open_probe;
    Alcotest.test_case "admission control sheds deterministically" `Quick
      test_serve_shed_deterministic;
    Alcotest.test_case "sweep spares a live writer's temp file" `Quick
      test_cache_sweep_spares_locked;
  ]
