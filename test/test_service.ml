(** The compile service: work-stealing deque invariants, pool ordering /
    exception / nesting semantics, parallel-equals-serial for the whole
    workload suite at every level (bare and supervised), cache hit
    replay, fingerprint invalidation, poisoned-entry fallback, and the
    serve job protocol. *)

open Epre_ir
module Deque = Epre_service.Deque
module Pool = Epre_service.Pool
module Cache = Epre_service.Cache
module Service = Epre_service.Service
module Pipeline = Epre.Pipeline

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "eprec-test-cache-%d-%d" (Unix.getpid ()) !n)
    in
    (* Never reuse state from an earlier (crashed) run. *)
    let rec rm p =
      if Sys.file_exists p then
        if Sys.is_directory p then begin
          Array.iter (fun f -> rm (Filename.concat p f)) (Sys.readdir p);
          Sys.rmdir p
        end
        else Sys.remove p
    in
    rm dir;
    dir

let program_text p = Ir_text.print_program p

(* ------------------------------------------------------------------ *)
(* Deque *)

let test_deque_lifo_fifo () =
  let d = Deque.create () in
  List.iter (Deque.push d) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "length" 4 (Deque.length d);
  (* Owner pops newest first... *)
  Alcotest.(check (option int)) "pop" (Some 4) (Deque.pop d);
  (* ...thieves steal oldest first. *)
  Alcotest.(check (option int)) "steal" (Some 1) (Deque.steal d);
  Alcotest.(check (option int)) "pop2" (Some 3) (Deque.pop d);
  Alcotest.(check (option int)) "steal2" (Some 2) (Deque.steal d);
  Alcotest.(check (option int)) "empty pop" None (Deque.pop d);
  Alcotest.(check (option int)) "empty steal" None (Deque.steal d)

let test_deque_grows () =
  let d = Deque.create () in
  for i = 1 to 1000 do Deque.push d i done;
  let seen = ref 0 in
  let rec drain () =
    match Deque.steal d with
    | Some v ->
      incr seen;
      Alcotest.(check int) "fifo order" !seen v;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "all drained" 1000 !seen

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_map_order () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let input = Array.init 100 (fun i -> i) in
          let out = Pool.map pool (fun i -> i * i) input in
          Array.iteri
            (fun i v ->
              Alcotest.(check int) (Printf.sprintf "jobs=%d idx=%d" jobs i)
                (i * i) v)
            out))
    [ 1; 2; 4 ]

exception Boom of int

let test_pool_exception () =
  Pool.with_pool ~jobs:2 (fun pool ->
      match
        Pool.map pool
          (fun i -> if i mod 3 = 2 then raise (Boom i) else i)
          (Array.init 20 (fun i -> i))
      with
      | _ -> Alcotest.fail "expected the batch to raise"
      | exception Boom i ->
        (* The lowest-indexed failure wins, whatever the schedule. *)
        Alcotest.(check int) "first failure" 2 i)

let test_pool_nested_map () =
  (* A task that submits its own batch must not deadlock: the submitter
     helps drain the pool while it waits. *)
  Pool.with_pool ~jobs:2 (fun pool ->
      let out =
        Pool.map_list pool
          (fun i ->
            Array.fold_left ( + ) 0
              (Pool.map pool (fun j -> (10 * i) + j) (Array.init 4 (fun j -> j))))
          [ 1; 2; 3 ]
      in
      Alcotest.(check (list int)) "nested sums" [ 46; 86; 126 ] out)

(* ------------------------------------------------------------------ *)
(* Parallel optimize == serial optimize *)

let test_parallel_identical_to_serial () =
  List.iter
    (fun level ->
      List.iter
        (fun w ->
          let serial = Epre_workloads.Workloads.compile w in
          let parallel = Epre_workloads.Workloads.compile w in
          let serial_stats, _ = Service.optimize_program ~level serial in
          let parallel_stats, _ =
            Pool.with_pool ~jobs:3 (fun pool ->
                Service.optimize_program ~pool ~level parallel)
          in
          Alcotest.(check string)
            (Printf.sprintf "%s at %s" w.Epre_workloads.Workloads.name
               (Pipeline.level_to_string level))
            (program_text serial) (program_text parallel);
          Alcotest.(check bool) "stats equal" true (serial_stats = parallel_stats))
        Epre_workloads.Workloads.all)
    Pipeline.all_levels

let test_parallel_supervised_identical () =
  let config = Epre_harness.Harness.default_config in
  List.iter
    (fun w ->
      let serial = Epre_workloads.Workloads.compile w in
      let parallel = Epre_workloads.Workloads.compile w in
      let s_stats, s_records =
        Pipeline.optimize_supervised ~config ~level:Pipeline.Distribution serial
      in
      let p_stats, p_records =
        Pool.with_pool ~jobs:3 (fun pool ->
            Service.optimize_supervised_program ~pool ~config
              ~level:Pipeline.Distribution parallel)
      in
      Alcotest.(check string) w.Epre_workloads.Workloads.name
        (program_text serial) (program_text parallel);
      Alcotest.(check bool) "stats equal" true (s_stats = p_stats);
      (* Records match the serial pass-major order exactly, up to wall
         clock. *)
      let shape (r : Epre_harness.Harness.record) =
        (r.pass, r.routine, r.outcome = Epre_harness.Harness.Passed)
      in
      Alcotest.(check bool) "record order" true
        (List.map shape s_records = List.map shape p_records))
    Epre_workloads.Workloads.all

let test_exec_validation_falls_back_serial () =
  (* Exec-tier supervision must produce its usual result through the
     service entry point even with a pool attached (it runs serially). *)
  let w = Option.get (Epre_workloads.Workloads.find "saxpy") in
  let reference = Epre_workloads.Workloads.compile w in
  let prog = Epre_workloads.Workloads.compile w in
  let config =
    { Epre_harness.Harness.default_config with validation = Epre_harness.Harness.Exec }
  in
  let _, _ =
    Pipeline.optimize_supervised ~config ~level:Pipeline.Partial reference
  in
  let _, _ =
    Pool.with_pool ~jobs:2 (fun pool ->
        Service.optimize_supervised_program ~pool ~config
          ~level:Pipeline.Partial prog)
  in
  Alcotest.(check string) "exec-tier result" (program_text reference)
    (program_text prog)

(* ------------------------------------------------------------------ *)
(* Cache *)

let test_cache_second_run_all_hits () =
  let dir = fresh_dir () in
  let cache = Cache.create ~dir () in
  let cold = Epre_workloads.Workloads.compile (Option.get (Epre_workloads.Workloads.find "crout")) in
  let cold_stats, cold_counts =
    Service.optimize_program ~cache ~level:Pipeline.Partial cold
  in
  Alcotest.(check int) "cold run misses everything"
    (List.length cold_stats) cold_counts.Service.misses;
  Alcotest.(check int) "cold run hits nothing" 0 cold_counts.Service.hits;
  let warm = Epre_workloads.Workloads.compile (Option.get (Epre_workloads.Workloads.find "crout")) in
  let warm_stats, warm_counts =
    Service.optimize_program ~cache ~level:Pipeline.Partial warm
  in
  Alcotest.(check int) "warm run hits everything"
    (List.length warm_stats) warm_counts.Service.hits;
  Alcotest.(check int) "warm run misses nothing" 0 warm_counts.Service.misses;
  Alcotest.(check string) "identical optimized text" (program_text cold)
    (program_text warm);
  Alcotest.(check bool) "identical stats" true (cold_stats = warm_stats)

let test_cache_survives_reopen () =
  (* A second Cache.t over the same directory (a new process, in effect)
     sees the first one's entries. *)
  let dir = fresh_dir () in
  let w = Option.get (Epre_workloads.Workloads.find "dot") in
  let first = Epre_workloads.Workloads.compile w in
  let _ =
    Service.optimize_program ~cache:(Cache.create ~dir ())
      ~level:Pipeline.Partial first
  in
  let second = Epre_workloads.Workloads.compile w in
  let stats, counts =
    Service.optimize_program ~cache:(Cache.create ~dir ())
      ~level:Pipeline.Partial second
  in
  Alcotest.(check int) "all hits after reopen" (List.length stats)
    counts.Service.hits;
  Alcotest.(check string) "same text" (program_text first) (program_text second)

let test_cache_fingerprint_invalidation () =
  (* Same input at a different level must miss: the fingerprint is part
     of the key. *)
  let dir = fresh_dir () in
  let cache = Cache.create ~dir () in
  let w = Option.get (Epre_workloads.Workloads.find "saxpy") in
  let _ =
    Service.optimize_program ~cache ~level:Pipeline.Partial
      (Epre_workloads.Workloads.compile w)
  in
  let stats, counts =
    Service.optimize_program ~cache ~level:Pipeline.Reassociation
      (Epre_workloads.Workloads.compile w)
  in
  Alcotest.(check int) "other level misses" (List.length stats)
    counts.Service.misses;
  Alcotest.(check bool) "fingerprints differ" true
    (Pipeline.fingerprint ~level:Pipeline.Partial
    <> Pipeline.fingerprint ~level:Pipeline.Reassociation)

let corrupt_entries dir f =
  let count = ref 0 in
  Array.iter
    (fun sub ->
      let subdir = Filename.concat dir sub in
      if Sys.is_directory subdir then
        Array.iter
          (fun file ->
            if Filename.check_suffix file ".json" then begin
              incr count;
              f (Filename.concat subdir file)
            end)
          (Sys.readdir subdir))
    (Sys.readdir dir);
  !count

let test_cache_poisoned_entry_recompiles () =
  let dir = fresh_dir () in
  let cache = Cache.create ~dir () in
  let w = Option.get (Epre_workloads.Workloads.find "euclid") in
  let reference = Epre_workloads.Workloads.compile w in
  let _ = Service.optimize_program ~cache ~level:Pipeline.Partial reference in
  (* Corrupt every stored entry in a different way each time. *)
  List.iter
    (fun corruption ->
      let n =
        corrupt_entries dir (fun path ->
            let oc = open_out_bin path in
            output_string oc corruption;
            close_out oc)
      in
      Alcotest.(check bool) "entries exist to corrupt" true (n > 0);
      let prog = Epre_workloads.Workloads.compile w in
      let stats, counts =
        Service.optimize_program ~cache ~level:Pipeline.Partial prog
      in
      (* Every poisoned entry is a miss (plus a deletion), and the result
         is the honest recompile. *)
      Alcotest.(check int) "poisoned -> recompile" (List.length stats)
        counts.Service.misses;
      Alcotest.(check string) "recompiled text equals reference"
        (program_text reference) (program_text prog))
    [ "not json at all";
      "{\"schema\":\"epre/cache-entry/v1\",\"key\":\"wrong\"}";
      "{\"schema\":\"something/else\",\"iloc\":\"x\"}" ]

let test_cache_eviction () =
  let dir = fresh_dir () in
  let cache = Cache.create ~dir ~max_entries:4 () in
  List.iteri
    (fun i w ->
      if i < 6 then
        ignore
          (Service.optimize_program ~cache ~level:Pipeline.Baseline
             (Epre_workloads.Workloads.compile w)))
    Epre_workloads.Workloads.all;
  let entries = corrupt_entries dir (fun _ -> ()) in
  Alcotest.(check bool)
    (Printf.sprintf "bounded (%d entries)" entries)
    true (entries <= 4)

(* ------------------------------------------------------------------ *)
(* Serve protocol *)

let test_job_parsing () =
  (match Service.job_of_line ~default_id:"d" {|{"workload":"saxpy"}|} with
  | Ok j ->
    Alcotest.(check string) "default id" "d" j.Service.id;
    Alcotest.(check bool) "default level" true (j.Service.level = Pipeline.Partial);
    Alcotest.(check bool) "default emit" true j.Service.emit
  | Error m -> Alcotest.failf "parse failed: %s" m);
  List.iter
    (fun line ->
      match Service.job_of_line ~default_id:"d" line with
      | Ok _ -> Alcotest.failf "expected %s to be rejected" line
      | Error _ -> ())
    [ "not json"; "{}"; {|{"workload":"a","iloc":"b"}|};
      {|{"workload":"a","level":"warp"}|} ]

let test_serve_stream () =
  let dir = fresh_dir () in
  let cache = Cache.create ~dir () in
  let input =
    String.concat "\n"
      [ {|{"id":"a","workload":"saxpy","emit":false}|};
        "";
        "garbage line";
        {|{"id":"b","workload":"saxpy","emit":false}|};
        {|{"id":"c","workload":"nope"}|} ]
    ^ "\n"
  in
  let in_path = Filename.temp_file "eprec-serve" ".jobs" in
  let out_path = Filename.temp_file "eprec-serve" ".out" in
  let oc = open_out_bin in_path in
  output_string oc input;
  close_out oc;
  let ic = open_in_bin in_path and out = open_out_bin out_path in
  let summary =
    Pool.with_pool ~jobs:2 (fun pool ->
        Service.serve ~cache ~batch:2 ~pool ~input:ic ~output:out ())
  in
  close_in_noerr ic;
  close_out_noerr out;
  Alcotest.(check int) "jobs" 4 summary.Service.jobs;
  Alcotest.(check int) "ok" 2 summary.Service.succeeded;
  Alcotest.(check int) "failed" 2 summary.Service.failed;
  Alcotest.(check bool) "repeat hit" true (summary.Service.total.Service.hits > 0);
  (* One result line per job, in input order, all valid JSON. *)
  let lines = ref [] in
  let ic = open_in out_path in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in_noerr ic);
  let lines = List.rev !lines in
  Alcotest.(check int) "result lines" 4 (List.length lines);
  let ids =
    List.map
      (fun l ->
        match Epre_telemetry.Tjson.parse l with
        | Ok j -> (
          match Epre_telemetry.Tjson.member "id" j with
          | Some (Epre_telemetry.Tjson.Str s) -> s
          | _ -> Alcotest.fail "result without id")
        | Error m -> Alcotest.failf "bad result line: %s" m)
      lines
  in
  Alcotest.(check (list string)) "input order" [ "a"; "job-2"; "b"; "c" ] ids;
  Sys.remove in_path;
  Sys.remove out_path

let suite =
  [
    Alcotest.test_case "deque lifo/fifo" `Quick test_deque_lifo_fifo;
    Alcotest.test_case "deque grows" `Quick test_deque_grows;
    Alcotest.test_case "pool preserves order" `Quick test_pool_map_order;
    Alcotest.test_case "pool re-raises first failure" `Quick test_pool_exception;
    Alcotest.test_case "pool nested map" `Quick test_pool_nested_map;
    Alcotest.test_case "parallel == serial (all workloads x levels)" `Slow
      test_parallel_identical_to_serial;
    Alcotest.test_case "parallel supervised == serial" `Slow
      test_parallel_supervised_identical;
    Alcotest.test_case "exec tier falls back serial" `Quick
      test_exec_validation_falls_back_serial;
    Alcotest.test_case "second run all cache hits" `Quick
      test_cache_second_run_all_hits;
    Alcotest.test_case "cache survives reopen" `Quick test_cache_survives_reopen;
    Alcotest.test_case "fingerprint invalidation" `Quick
      test_cache_fingerprint_invalidation;
    Alcotest.test_case "poisoned entry recompiles" `Quick
      test_cache_poisoned_entry_recompiles;
    Alcotest.test_case "eviction bounds entries" `Quick test_cache_eviction;
    Alcotest.test_case "job parsing" `Quick test_job_parsing;
    Alcotest.test_case "serve streams in order" `Quick test_serve_stream;
  ]
