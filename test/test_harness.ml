(** The fault-tolerant pass harness: checkpoint/rollback supervision,
    translation validation, chaos injection, reporting, and bisection.

    The acceptance matrix: with any single [chaos:*] pass injected into any
    pipeline level, every workload still produces its seed behaviour (the
    rollback engaged), the report lists exactly the injected failures, and
    [Bisect] identifies the injected pass. *)

open Epre_ir
module Harness = Epre_harness.Harness
module Chaos = Epre_harness.Chaos
module Report = Epre_harness.Report
module Bisect = Epre_harness.Bisect

let exec_config =
  { Harness.default_config with Harness.validation = Harness.Exec }

let chaos_pass kind =
  { Harness.pass_name = Chaos.name kind; run = (fun r -> Chaos.run kind r) }

let is_chaos_record (r : Harness.record) =
  Helpers.contains_substring ~needle:"chaos:" r.Harness.pass

(* --- the acceptance matrix -------------------------------------------- *)

(* Rotate every workload through a (chaos kind, level, position) triple so
   the suite covers the full kind x level product several times without
   running the 16-fold matrix on all 50 workloads. *)
let test_chaos_rotation () =
  let kinds = Array.of_list Chaos.all_kinds in
  let levels = Array.of_list Epre.Pipeline.all_levels in
  let total_rollbacks = ref 0 in
  List.iteri
    (fun i w ->
      let kind = kinds.(i mod Array.length kinds) in
      let level = levels.(i / Array.length kinds mod Array.length levels) in
      let name = w.Epre_workloads.Workloads.name in
      let what =
        Printf.sprintf "%s %s + %s" name
          (Epre.Pipeline.level_to_string level)
          (Chaos.name kind)
      in
      let reference = Epre_workloads.Workloads.compile w in
      let prog = Epre_workloads.Workloads.compile w in
      let _, records =
        Epre.Pipeline.optimize_supervised
          ~inject:[ (i mod 3, chaos_pass kind) ]
          ~config:exec_config ~level prog
      in
      (* Graceful degradation: behaviour is the seed behaviour. *)
      Helpers.check_same_behaviour ~what reference prog;
      (* Exactly the injected failures: a real pass never rolls back. *)
      List.iter
        (fun (r : Harness.record) ->
          match r.Harness.outcome with
          | Harness.Passed -> ()
          | Harness.Rolled_back _ ->
            incr total_rollbacks;
            Alcotest.(check string)
              (what ^ ": only the chaos pass may fail")
              (Chaos.name kind) r.Harness.pass)
        records)
    Epre_workloads.Workloads.all;
  (* The injectors are not duds: corruption was caught across the suite. *)
  Alcotest.(check bool)
    (Printf.sprintf "rollbacks engaged (%d)" !total_rollbacks)
    true (!total_rollbacks > 30)

(* The full kind x level matrix on one workload with a known-corruptible
   kernel (loops, non-commutative arithmetic, live instructions). *)
let test_chaos_full_matrix () =
  let w = Option.get (Epre_workloads.Workloads.find "dot") in
  List.iter
    (fun kind ->
      List.iter
        (fun level ->
          let what =
            Printf.sprintf "dot %s + %s"
              (Epre.Pipeline.level_to_string level)
              (Chaos.name kind)
          in
          let reference = Epre_workloads.Workloads.compile w in
          let prog = Epre_workloads.Workloads.compile w in
          let _, records =
            Epre.Pipeline.optimize_supervised
              ~inject:[ (1, chaos_pass kind) ]
              ~config:exec_config ~level prog
          in
          Helpers.check_same_behaviour ~what reference prog;
          let failed = Harness.rolled_back records in
          Alcotest.(check bool) (what ^ ": chaos caught") true (failed <> []);
          List.iter
            (fun (r : Harness.record) ->
              Alcotest.(check string) (what ^ ": culprit name") (Chaos.name kind)
                r.Harness.pass)
            failed)
        Epre.Pipeline.all_levels)
    Chaos.all_kinds

(* --- detection tiers --------------------------------------------------- *)

let test_ir_tier_catches_structural_faults () =
  (* break-phi and detach-edge violate well-formedness: the [Ir] tier
     catches them without interpreting anything. *)
  let w = Option.get (Epre_workloads.Workloads.find "saxpy") in
  List.iter
    (fun kind ->
      let prog = Epre_workloads.Workloads.compile w in
      let reference = Epre_workloads.Workloads.compile w in
      let _, records =
        Epre.Pipeline.optimize_supervised
          ~inject:[ (0, chaos_pass kind) ]
          ~config:Harness.default_config (* Ir tier *)
          ~level:Epre.Pipeline.Partial prog
      in
      let failed = Harness.rolled_back records in
      Alcotest.(check bool)
        (Chaos.name kind ^ " caught at ir tier")
        true
        (List.exists (fun (r : Harness.record) -> r.Harness.pass = Chaos.name kind) failed);
      List.iter
        (fun (r : Harness.record) ->
          match r.Harness.outcome with
          | Harness.Rolled_back (Harness.Ir_violation _) | Harness.Passed -> ()
          | Harness.Rolled_back why ->
            Alcotest.failf "%s: expected an IR violation, got %s" r.Harness.pass
              (Harness.reason_to_string why))
        failed;
      Helpers.check_same_behaviour ~what:(Chaos.name kind) reference prog)
    [ Chaos.Break_phi; Chaos.Detach_edge ]

let test_exec_tier_catches_semantic_faults () =
  (* drop-instr and swap-operands corrupt semantics, not CFG structure.
     The exec tier must catch them — usually as a behaviour mismatch,
     though the verifier-backed IR sub-tier may catch one statically
     first (e.g. dropping a definition trips the definite-assignment
     rule V008), which is the stronger outcome. *)
  let w = Option.get (Epre_workloads.Workloads.find "saxpy") in
  List.iter
    (fun kind ->
      let prog = Epre_workloads.Workloads.compile w in
      let _, records =
        Epre.Pipeline.optimize_supervised
          ~inject:[ (0, chaos_pass kind) ]
          ~config:exec_config ~level:Epre.Pipeline.Partial prog
      in
      match
        List.find_opt
          (fun (r : Harness.record) -> r.Harness.pass = Chaos.name kind)
          (Harness.rolled_back records)
      with
      | Some
          { Harness.outcome =
              Harness.Rolled_back
                (Harness.Behaviour_mismatch _ | Harness.Ir_violation _);
            _ } ->
        ()
      | Some { Harness.outcome = Harness.Rolled_back why; _ } ->
        Alcotest.failf "%s: expected a mismatch or IR violation, got %s"
          (Chaos.name kind)
          (Harness.reason_to_string why)
      | _ -> Alcotest.failf "%s: not caught" (Chaos.name kind))
    [ Chaos.Drop_instr; Chaos.Swap_operands ]

let test_exception_rolls_back () =
  let prog = Helpers.compile "fn main(): int { return 6 * 7; }" in
  let before = Pp.routine_to_string (Program.find_exn prog "main") in
  let bomb = { Harness.pass_name = "bomb"; run = (fun _ -> failwith "kaboom") } in
  let records =
    Harness.supervise
      { Harness.default_config with Harness.validation = Harness.Off }
      ~passes:[ bomb ] prog
  in
  (match records with
  | [ { Harness.outcome = Harness.Rolled_back (Harness.Pass_exception m); _ } ] ->
    Alcotest.(check bool) "message kept" true
      (Helpers.contains_substring ~needle:"kaboom" m)
  | _ -> Alcotest.fail "expected exactly one rolled-back record");
  Alcotest.(check string) "IR restored bit-for-bit" before
    (Pp.routine_to_string (Program.find_exn prog "main"))

let test_rollback_restores_ir_exactly () =
  (* Chaos may land a harmless mutation (e.g. dropping an instruction in an
     unreachable block), which the harness rightly keeps — so assert
     bit-for-bit restoration only for the routines that rolled back. *)
  let w = Option.get (Epre_workloads.Workloads.find "euclid") in
  let prog = Epre_workloads.Workloads.compile w in
  List.iter
    (fun kind ->
      let before =
        List.map
          (fun (r : Routine.t) -> (r.Routine.name, Pp.routine_to_string r))
          (Program.routines prog)
      in
      let records =
        Harness.supervise exec_config ~passes:[ chaos_pass kind ] prog
      in
      List.iter
        (fun (rcd : Harness.record) ->
          match rcd.Harness.outcome with
          | Harness.Passed -> ()
          | Harness.Rolled_back _ ->
            Alcotest.(check string)
              (Chaos.name kind ^ ": " ^ rcd.Harness.routine ^ " restored")
              (List.assoc rcd.Harness.routine before)
              (Pp.routine_to_string (Program.find_exn prog rcd.Harness.routine)))
        records)
    Chaos.all_kinds

let test_fail_fast_without_safe () =
  let w = Option.get (Epre_workloads.Workloads.find "euclid") in
  let prog = Epre_workloads.Workloads.compile w in
  let config = { exec_config with Harness.keep_going = false } in
  match
    Epre.Pipeline.optimize_supervised
      ~inject:[ (0, chaos_pass Chaos.Detach_edge) ]
      ~config ~level:Epre.Pipeline.Baseline prog
  with
  | _ -> Alcotest.fail "expected Supervision_failed"
  | exception Harness.Supervision_failed record ->
    Alcotest.(check string) "culprit" (Chaos.name Chaos.Detach_edge)
      record.Harness.pass

(* --- reporting --------------------------------------------------------- *)

let test_report_json_shape () =
  let w = Option.get (Epre_workloads.Workloads.find "saxpy") in
  let prog = Epre_workloads.Workloads.compile w in
  let _, records =
    Epre.Pipeline.optimize_supervised
      ~inject:[ (0, chaos_pass Chaos.Detach_edge) ]
      ~config:exec_config ~level:Epre.Pipeline.Partial prog
  in
  let json = Report.to_json records in
  let has n = Helpers.contains_substring ~needle:n json in
  Alcotest.(check bool) "rolled-back entry" true (has "\"outcome\":\"rolled-back\"");
  Alcotest.(check bool) "ok entry" true (has "\"outcome\":\"ok\"");
  Alcotest.(check bool) "culprit named" true (has "\"pass\":\"chaos:detach-edge\"");
  Alcotest.(check bool) "reason given" true (has "\"reason\":\"ill-formed IR:");
  Alcotest.(check bool) "timings present" true (has "\"duration_ms\":");
  (* An ok record carries no reason field. *)
  List.iter
    (fun (r : Harness.record) ->
      match r.Harness.outcome with
      | Harness.Passed ->
        Alcotest.(check bool) "ok record has no reason" false
          (Helpers.contains_substring ~needle:"reason" (Report.record_to_json r))
      | Harness.Rolled_back _ -> ())
    records

let test_report_meta_fields () =
  (* [record.meta] renders verbatim after the fixed fields — the shared
     schema the fuzzer's verdicts rely on. Supervised runs leave it
     empty. *)
  let base =
    { Harness.pass = "pre"; routine = "main"; outcome = Harness.Passed;
      duration_ms = 1.5; meta = [] }
  in
  Alcotest.(check bool) "empty meta adds nothing" false
    (Helpers.contains_substring ~needle:"fuzz_"
       (Report.record_to_json base));
  let tagged =
    { base with
      Harness.meta =
        [ ("fuzz_seed", Epre_telemetry.Tjson.Int 42);
          ("fuzz_class", Epre_telemetry.Tjson.Str "behaviour-mismatch") ] }
  in
  let json = Report.record_to_json tagged in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " rendered") true
        (Helpers.contains_substring ~needle json))
    [ "\"fuzz_seed\":42"; "\"fuzz_class\":\"behaviour-mismatch\"";
      "\"duration_ms\":" ];
  (* and the Tjson embedding parses back with the meta intact *)
  match
    Epre_telemetry.Tjson.parse
      (Epre_telemetry.Tjson.to_string (Report.record_to_tjson tagged))
  with
  | Error m -> Alcotest.failf "record JSON does not parse: %s" m
  | Ok doc ->
    Alcotest.(check bool) "meta member survives" true
      (Epre_telemetry.Tjson.member "fuzz_seed" doc
      = Some (Epre_telemetry.Tjson.Int 42))

let test_report_lists_exactly_the_failures () =
  let w = Option.get (Epre_workloads.Workloads.find "dot") in
  let prog = Epre_workloads.Workloads.compile w in
  let _, records =
    Epre.Pipeline.optimize_supervised
      ~inject:[ (2, chaos_pass Chaos.Drop_instr) ]
      ~config:exec_config ~level:Epre.Pipeline.Distribution prog
  in
  let failed = Harness.rolled_back records in
  Alcotest.(check bool) "at least one failure" true (failed <> []);
  List.iter
    (fun r ->
      Alcotest.(check bool) "every failure is the injected pass" true
        (is_chaos_record r))
    failed;
  (* and the report renders one rolled-back line per failure *)
  let json = Report.to_json records in
  let count_occurrences needle =
    let rec go i acc =
      if i + String.length needle > String.length json then acc
      else if String.sub json i (String.length needle) = needle then
        go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "one rolled-back JSON record per failure"
    (List.length failed)
    (count_occurrences "\"rolled-back\"")

(* --- chaos determinism ------------------------------------------------- *)

let test_chaos_is_seed_deterministic () =
  let corrupt seed =
    let prog =
      Epre_workloads.Workloads.compile
        (Option.get (Epre_workloads.Workloads.find "euclid"))
    in
    List.iter (fun r -> Chaos.run ~seed Chaos.Drop_instr r) (Program.routines prog);
    String.concat "\n" (List.map Pp.routine_to_string (Program.routines prog))
  in
  Alcotest.(check string) "same seed, same corruption" (corrupt 7) (corrupt 7);
  Alcotest.(check bool) "chaos corrupts under some seed" true
    (corrupt 7 <> corrupt 8 || corrupt 7 <> corrupt 9)

(* --- bisection --------------------------------------------------------- *)

let test_bisect_finds_injected_pass () =
  let w = Option.get (Epre_workloads.Workloads.find "dot") in
  let prog = Epre_workloads.Workloads.compile w in
  List.iter
    (fun (kind, position) ->
      let base = Epre.Pipeline.level_passes ~level:Epre.Pipeline.Partial in
      let rec splice i = function
        | rest when i = position -> chaos_pass kind :: rest
        | [] -> [ chaos_pass kind ]
        | x :: rest -> x :: splice (i + 1) rest
      in
      let passes = splice 0 base in
      match Bisect.run ~passes prog with
      | None -> Alcotest.failf "%s: bisect found nothing" (Chaos.name kind)
      | Some failure ->
        Alcotest.(check string)
          (Chaos.name kind ^ ": culprit name")
          (Chaos.name kind) failure.Bisect.pass;
        Alcotest.(check int)
          (Chaos.name kind ^ ": culprit position")
          position failure.Bisect.index;
        Alcotest.(check bool)
          (Chaos.name kind ^ ": IR delta shown")
          true
          (failure.Bisect.delta <> []))
    [ (Chaos.Drop_instr, 0); (Chaos.Swap_operands, 1); (Chaos.Break_phi, 2);
      (Chaos.Detach_edge, 3) ]

let test_bisect_healthy_sequence () =
  let w = Option.get (Epre_workloads.Workloads.find "saxpy") in
  let prog = Epre_workloads.Workloads.compile w in
  let passes = Epre.Pipeline.level_passes ~level:Epre.Pipeline.Distribution in
  Alcotest.(check bool) "healthy" true (Bisect.run ~passes prog = None)

let test_bisect_does_not_mutate_input () =
  let w = Option.get (Epre_workloads.Workloads.find "euclid") in
  let prog = Epre_workloads.Workloads.compile w in
  let before = List.map Pp.routine_to_string (Program.routines prog) in
  let passes =
    chaos_pass Chaos.Drop_instr :: Epre.Pipeline.level_passes ~level:Epre.Pipeline.Baseline
  in
  ignore (Bisect.run ~passes prog);
  List.iter2
    (fun b a -> Alcotest.(check string) "input untouched" b a)
    before
    (List.map Pp.routine_to_string (Program.routines prog))

(* --- satellite: Naming stats surfaced --------------------------------- *)

let test_exprs_renamed_recorded () =
  (* Two expressions fighting over one target register: [Naming] must
     rewrite, and the Partial pipeline must surface the count. *)
  let b = Builder.start ~name:"main" ~nparams:0 in
  let x = Builder.int b 3 in
  let y = Builder.int b 4 in
  let t = Builder.fresh_reg b in
  Builder.emit b (Instr.Binop { op = Op.Add; dst = t; a = x; b = y });
  Builder.emit b (Instr.Binop { op = Op.Mul; dst = t; a = x; b = y });
  Builder.ret b (Some t);
  let prog = Program.create [ Builder.finish b ] in
  let stats = Epre.Pipeline.optimize ~level:Epre.Pipeline.Partial prog in
  (match stats with
  | [ s ] ->
    Alcotest.(check bool) "renamed sites surfaced" true
      (s.Epre.Pipeline.exprs_renamed > 0)
  | _ -> Alcotest.fail "one routine expected");
  let prog2 =
    Epre_workloads.Workloads.compile
      (Option.get (Epre_workloads.Workloads.find "saxpy"))
  in
  List.iter
    (fun s ->
      Alcotest.(check int) "baseline never renames" 0 s.Epre.Pipeline.exprs_renamed)
    (Epre.Pipeline.optimize ~level:Epre.Pipeline.Baseline prog2)

let suite =
  [
    Alcotest.test_case "chaos x level rotation over all workloads" `Slow
      test_chaos_rotation;
    Alcotest.test_case "chaos x level full matrix on dot" `Slow test_chaos_full_matrix;
    Alcotest.test_case "ir tier catches structural faults" `Quick
      test_ir_tier_catches_structural_faults;
    Alcotest.test_case "exec tier catches semantic faults" `Quick
      test_exec_tier_catches_semantic_faults;
    Alcotest.test_case "pass exception rolls back" `Quick test_exception_rolls_back;
    Alcotest.test_case "rollback restores IR exactly" `Quick
      test_rollback_restores_ir_exactly;
    Alcotest.test_case "keep_going=false fails fast" `Quick test_fail_fast_without_safe;
    Alcotest.test_case "report JSON shape" `Quick test_report_json_shape;
    Alcotest.test_case "report meta fields (fuzz provenance)" `Quick
      test_report_meta_fields;
    Alcotest.test_case "report lists exactly the failures" `Quick
      test_report_lists_exactly_the_failures;
    Alcotest.test_case "chaos is seed-deterministic" `Quick
      test_chaos_is_seed_deterministic;
    Alcotest.test_case "bisect finds the injected pass" `Slow
      test_bisect_finds_injected_pass;
    Alcotest.test_case "bisect on a healthy sequence" `Quick test_bisect_healthy_sequence;
    Alcotest.test_case "bisect leaves the input program intact" `Quick
      test_bisect_does_not_mutate_input;
    Alcotest.test_case "naming rename count surfaced" `Quick test_exprs_renamed_recorded;
  ]
