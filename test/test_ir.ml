(** Tests for [Epre_ir]: operator algebra, instruction structure, CFG
    surgery, routine validation. *)

open Epre_ir

let value_gen =
  QCheck2.Gen.(
    oneof [ map (fun i -> Value.I i) (int_range (-1000) 1000);
            map (fun f -> Value.F f) (float_bound_inclusive 100.0) ])

let int_value_gen = QCheck2.Gen.(map (fun i -> Value.I i) (int_range (-1000) 1000))

(* ------------------------------------------------------------------ *)
(* Operator algebra: the properties [Op] advertises must agree with
   [Op.eval_binop], because reassociation and peephole both rely on them. *)

let arith_ops_int = [ Op.Add; Op.Sub; Op.Mul; Op.And; Op.Or; Op.Xor; Op.Min; Op.Max ]

let commutative_law =
  Helpers.qcheck_case ~count:300 "Op" "commutative ops commute under eval"
    QCheck2.Gen.(pair int_value_gen int_value_gen)
    (fun (a, b) ->
      List.for_all
        (fun op ->
          (not (Op.commutative op))
          || Value.equal (Op.eval_binop op a b) (Op.eval_binop op b a))
        arith_ops_int)

let associative_law =
  Helpers.qcheck_case ~count:300 "Op" "associative int ops associate under eval"
    QCheck2.Gen.(triple int_value_gen int_value_gen int_value_gen)
    (fun (a, b, c) ->
      List.for_all
        (fun op ->
          (not (Op.associative op))
          || Value.equal
               (Op.eval_binop op (Op.eval_binop op a b) c)
               (Op.eval_binop op a (Op.eval_binop op b c)))
        arith_ops_int)

let identity_law =
  Helpers.qcheck_case ~count:300 "Op" "identity elements are identities"
    int_value_gen
    (fun a ->
      List.for_all
        (fun op ->
          match Op.identity op with
          | Some e when Op.binop_operand_ty op = Ty.Int ->
            Value.equal (Op.eval_binop op a e) a
          | _ -> true)
        Op.all_binops)

let annihilator_law =
  Helpers.qcheck_case ~count:300 "Op" "annihilators annihilate"
    int_value_gen
    (fun a ->
      List.for_all
        (fun op ->
          match Op.annihilator op with
          | Some z when Op.binop_operand_ty op = Ty.Int ->
            Value.equal (Op.eval_binop op a z) z
          | _ -> true)
        Op.all_binops)

let sub_as_add_neg_law =
  Helpers.qcheck_case ~count:300 "Op" "x - y = x + (-y)"
    QCheck2.Gen.(pair int_value_gen int_value_gen)
    (fun (a, b) ->
      Value.equal (Op.eval_binop Op.Sub a b)
        (Op.eval_binop Op.Add a (Op.eval_unop Op.Neg b)))

let distribution_law =
  Helpers.qcheck_case ~count:300 "Op" "w*(x+y) = w*x + w*y over ints"
    QCheck2.Gen.(triple int_value_gen int_value_gen int_value_gen)
    (fun (w, x, y) ->
      Value.equal
        (Op.eval_binop Op.Mul w (Op.eval_binop Op.Add x y))
        (Op.eval_binop Op.Add (Op.eval_binop Op.Mul w x) (Op.eval_binop Op.Mul w y)))

let test_division_by_zero () =
  Alcotest.check_raises "div" Op.Division_by_zero (fun () ->
      ignore (Op.eval_binop Op.Div (Value.I 1) (Value.I 0)));
  Alcotest.check_raises "rem" Op.Division_by_zero (fun () ->
      ignore (Op.eval_binop Op.Rem (Value.I 1) (Value.I 0)))

let test_type_errors () =
  Alcotest.check_raises "int op on float" (Value.Type_error "expected int value")
    (fun () -> ignore (Op.eval_binop Op.Add (Value.F 1.0) (Value.I 2)))

let test_compare_results_are_int () =
  List.iter
    (fun op ->
      match Op.eval_binop op (Value.F 1.0) (Value.F 2.0) with
      | Value.I (0 | 1) -> ()
      | v -> Alcotest.failf "%s returned %s" (Op.binop_name op) (Value.to_string v))
    [ Op.FEq; Op.FNe; Op.FLt; Op.FLe; Op.FGt; Op.FGe ]

(* ------------------------------------------------------------------ *)
(* Instruction def/use structure *)

let test_defs_uses () =
  let check i ~def ~uses =
    Alcotest.(check (option int)) "def" def (Instr.def i);
    Alcotest.(check (list int)) "uses" uses (Instr.uses i)
  in
  check (Instr.Const { dst = 3; value = Value.I 1 }) ~def:(Some 3) ~uses:[];
  check (Instr.Copy { dst = 1; src = 2 }) ~def:(Some 1) ~uses:[ 2 ];
  check (Instr.Binop { op = Op.Add; dst = 5; a = 1; b = 2 }) ~def:(Some 5) ~uses:[ 1; 2 ];
  check (Instr.Store { addr = 4; src = 7 }) ~def:None ~uses:[ 4; 7 ];
  check (Instr.Call { dst = None; callee = "f"; args = [ 1; 2; 3 ] }) ~def:None
    ~uses:[ 1; 2; 3 ];
  check (Instr.Phi { dst = 9; args = [ (0, 1); (1, 2) ] }) ~def:(Some 9) ~uses:[ 1; 2 ]

let test_map_uses_preserves_def () =
  let i = Instr.Binop { op = Op.Add; dst = 5; a = 1; b = 2 } in
  let i' = Instr.map_uses (fun r -> r + 10) i in
  Alcotest.(check (option int)) "def unchanged" (Some 5) (Instr.def i');
  Alcotest.(check (list int)) "uses shifted" [ 11; 12 ] (Instr.uses i')

let test_term_succs_dedup () =
  Alcotest.(check (list int)) "cbr same arms" [ 4 ]
    (Instr.term_succs (Instr.Cbr { cond = 0; ifso = 4; ifnot = 4 }));
  Alcotest.(check (list int)) "cbr" [ 4; 5 ]
    (Instr.term_succs (Instr.Cbr { cond = 0; ifso = 4; ifnot = 5 }));
  Alcotest.(check (list int)) "ret" [] (Instr.term_succs (Instr.Ret None))

(* ------------------------------------------------------------------ *)
(* CFG surgery *)

let diamond () =
  (* B0 -> B1/B2 -> B3 *)
  let cfg = Cfg.create () in
  let b0 = Cfg.add_block ~term:(Instr.Ret None) cfg in
  Cfg.set_entry cfg b0.Block.id;
  let b3 = Cfg.add_block ~term:(Instr.Ret None) cfg in
  let b1 = Cfg.add_block ~term:(Instr.Jump b3.Block.id) cfg in
  let b2 = Cfg.add_block ~term:(Instr.Jump b3.Block.id) cfg in
  b0.Block.term <- Instr.Cbr { cond = 0; ifso = b1.Block.id; ifnot = b2.Block.id };
  (cfg, b0, b1, b2, b3)

let test_preds () =
  let cfg, b0, b1, b2, b3 = diamond () in
  let preds = Cfg.preds cfg in
  Alcotest.(check (list int)) "entry preds" [] preds.(b0.Block.id);
  Alcotest.(check (list int)) "join preds"
    (List.sort compare [ b1.Block.id; b2.Block.id ])
    (List.sort compare preds.(b3.Block.id))

let test_split_edge_updates_phis () =
  let cfg, b0, b1, _b2, b3 = diamond () in
  b3.Block.instrs <- [ Instr.Phi { dst = 9; args = [ (b1.Block.id, 1); (2 + 1, 2) ] } ];
  ignore b0;
  let nb = Cfg.split_edge cfg ~from_:b1.Block.id ~to_:b3.Block.id in
  (match b3.Block.instrs with
  | [ Instr.Phi { args; _ } ] ->
    Alcotest.(check bool) "phi retargeted" true (List.mem_assoc nb.Block.id args);
    Alcotest.(check bool) "old pred gone" false (List.mem_assoc b1.Block.id args)
  | _ -> Alcotest.fail "phi expected");
  Alcotest.(check (list int)) "b1 now jumps to the new block" [ nb.Block.id ]
    (Cfg.succs cfg b1.Block.id);
  Alcotest.(check (list int)) "new block jumps to join" [ b3.Block.id ]
    (Cfg.succs cfg nb.Block.id)

let test_reachable () =
  let cfg, _b0, _b1, _b2, b3 = diamond () in
  let dead = Cfg.add_block ~term:(Instr.Jump b3.Block.id) cfg in
  let reach = Cfg.reachable cfg in
  Alcotest.(check bool) "join reachable" true (Epre_util.Bitset.mem reach b3.Block.id);
  Alcotest.(check bool) "orphan unreachable" false
    (Epre_util.Bitset.mem reach dead.Block.id)

let test_remove_entry_rejected () =
  let cfg, b0, _, _, _ = diamond () in
  Alcotest.check_raises "cannot remove entry"
    (Invalid_argument "Cfg.remove_block: cannot remove entry") (fun () ->
      Cfg.remove_block cfg b0.Block.id)

(* ------------------------------------------------------------------ *)
(* Routine validation *)

let test_validate_catches_bad_target () =
  let b = Builder.start ~name:"bad" ~nparams:0 in
  Builder.set_term b (Instr.Jump 42);
  Alcotest.check_raises "dangling jump"
    (Routine.Ill_formed "bad: block 0 jumps to missing block 42") (fun () ->
      ignore (Builder.finish b))

let test_validate_catches_out_of_range_reg () =
  let b = Builder.start ~name:"bad" ~nparams:0 in
  Builder.emit b (Instr.Copy { dst = 0; src = 99 });
  Builder.ret b None;
  Alcotest.check_raises "unknown register"
    (Routine.Ill_formed "bad: block 0, instr 0: use of r99 out of range") (fun () ->
      ignore (Builder.finish b))

let test_validate_phi_pred_mismatch () =
  let b = Builder.start ~name:"bad" ~nparams:0 in
  let r = Builder.fresh_reg b in
  Builder.emit b (Instr.Phi { dst = r; args = [ (7, r) ] });
  Builder.ret b None;
  Alcotest.check_raises "phi preds"
    (Routine.Ill_formed "bad: block 0, instr 0: phi preds 7 do not match CFG preds ")
    (fun () ->
      ignore (Builder.finish b))

let test_routine_copy_independent () =
  let b = Builder.start ~name:"r" ~nparams:1 in
  let t = Builder.int b 7 in
  Builder.ret b (Some t);
  let r = Builder.finish b in
  let r' = Routine.copy r in
  (Cfg.block r'.Routine.cfg 0).Block.instrs <- [];
  Alcotest.(check int) "original untouched" 1
    (List.length (Cfg.block r.Routine.cfg 0).Block.instrs)

let test_op_count () =
  let b = Builder.start ~name:"r" ~nparams:0 in
  let x = Builder.int b 1 in
  let y = Builder.int b 2 in
  let z = Builder.binop b Op.Add x y in
  Builder.ret b (Some z);
  let r = Builder.finish b in
  (* 3 instructions + 1 terminator *)
  Alcotest.(check int) "op_count" 4 (Routine.op_count r);
  Alcotest.(check int) "instr_count" 3 (Routine.instr_count r)

let suite =
  [
    commutative_law;
    associative_law;
    identity_law;
    annihilator_law;
    sub_as_add_neg_law;
    distribution_law;
    Alcotest.test_case "op: division by zero raises" `Quick test_division_by_zero;
    Alcotest.test_case "op: type errors raise" `Quick test_type_errors;
    Alcotest.test_case "op: comparisons return 0/1" `Quick test_compare_results_are_int;
    Alcotest.test_case "instr: defs and uses" `Quick test_defs_uses;
    Alcotest.test_case "instr: map_uses" `Quick test_map_uses_preserves_def;
    Alcotest.test_case "instr: successor dedup" `Quick test_term_succs_dedup;
    Alcotest.test_case "cfg: predecessor lists" `Quick test_preds;
    Alcotest.test_case "cfg: split_edge updates phis" `Quick test_split_edge_updates_phis;
    Alcotest.test_case "cfg: reachability" `Quick test_reachable;
    Alcotest.test_case "cfg: entry removal rejected" `Quick test_remove_entry_rejected;
    Alcotest.test_case "validate: dangling jump" `Quick test_validate_catches_bad_target;
    Alcotest.test_case "validate: register range" `Quick test_validate_catches_out_of_range_reg;
    Alcotest.test_case "validate: phi pred mismatch" `Quick test_validate_phi_pred_mismatch;
    Alcotest.test_case "routine: copy independence" `Quick test_routine_copy_independent;
    Alcotest.test_case "routine: op counts" `Quick test_op_count;
  ]
