(** Tests for [Epre_ir.Ir_text]: the textual ILOC format round-trips. *)

open Epre_ir

let text_roundtrip_program prog =
  let text = Ir_text.print_program prog in
  let prog' = Ir_text.parse_program text in
  Alcotest.(check string) "round trip is stable" text (Ir_text.print_program prog')

let test_roundtrip_simple () =
  let prog =
    Helpers.compile
      {|
fn f(x: int, a: float[4]): float {
  var s: float;
  var i: int;
  for i = 1 to x {
    s = s + a[1] * 2.5;
    a[2] = s;
  }
  emit(s);
  return s;
}
|}
  in
  text_roundtrip_program prog

let test_roundtrip_preserves_semantics () =
  let w = Option.get (Epre_workloads.Workloads.find "spline") in
  let prog = Epre_workloads.Workloads.compile w in
  let prog' = Ir_text.parse_program (Ir_text.print_program prog) in
  Helpers.check_same_behaviour ~what:"text round trip" prog prog'

let test_roundtrip_after_optimization () =
  (* Optimized CFGs have removed blocks (holes) and float constants; the
     format must carry them. *)
  let w = Option.get (Epre_workloads.Workloads.find "fmin") in
  let prog = Epre_workloads.Workloads.compile w in
  let p, _ = Epre.Pipeline.optimized_copy ~level:Epre.Pipeline.Distribution prog in
  text_roundtrip_program p;
  let p' = Ir_text.parse_program (Ir_text.print_program p) in
  Helpers.check_same_behaviour ~what:"optimized round trip" p p'

let test_roundtrip_ssa_form () =
  let r = Program.find_exn (Helpers.compile "fn f(n: int): int { var s: int; var i: int; for i = 1 to n { s = s + i; } return s; }") "f" in
  let r = Epre_ssa.Ssa.build r in
  let text = Ir_text.routine_to_string r in
  let prog' = Ir_text.parse_program text in
  let r' = Program.find_exn prog' "f" in
  Alcotest.(check string) "phi round trip" text (Ir_text.routine_to_string r')

let test_parse_concise_source () =
  (* The format doubles as a concise way to write IR tests. *)
  let text =
    {|
routine double(r0) entry B0 regs 3 {
B0:
  r1 = const 2          # the multiplier
  r2 = mul r0, r1
  return r2
}
|}
  in
  let prog = Ir_text.parse_program text in
  Alcotest.(check int) "semantics" 14
    (Helpers.run_int ~entry:"double" ~args:[ Value.I 7 ] prog)

let test_parse_float_exactness () =
  let v = 0.1 +. 0.2 in
  let b = Builder.start ~name:"f" ~nparams:0 in
  let c = Builder.float b v in
  Builder.ret b (Some c);
  let prog = Program.create [ Builder.finish b ] in
  let prog' = Ir_text.parse_program (Ir_text.print_program prog) in
  Alcotest.(check bool) "bit-exact float constant" true
    (Float.equal (Helpers.run_float ~entry:"f" prog) (Helpers.run_float ~entry:"f" prog'))

let test_parse_errors () =
  let check_error text fragment =
    try
      ignore (Ir_text.parse_program text);
      Alcotest.failf "expected parse error mentioning %S" fragment
    with Ir_text.Parse_error { message; _ } ->
      if not (Helpers.contains_substring ~needle:fragment message) then
        Alcotest.failf "error %S does not mention %S" message fragment
  in
  check_error "routine f() entry B0 regs 0 {\nB0:\n  r0 = bogus r1\n  return\n}" "cannot parse";
  check_error "routine f() entry B5 regs 0 {\nB0:\n  return\n}" "entry B5";
  check_error "routine f() entry B0 regs 0 {\nB0:\n  return\nB0:\n  return\n}" "duplicate block";
  check_error "routine f() entry B0 regs 0 {\nB0:\n  jump Bx\n}" "bad label"

let test_roundtrip_all_workloads () =
  (* Every workload routine, unoptimized and at every level: print, parse,
     and the reparse must print identically (structural equality via the
     canonical printer). *)
  List.iter
    (fun w ->
      let prog = Epre_workloads.Workloads.compile w in
      text_roundtrip_program prog;
      List.iter
        (fun level ->
          let p, _ = Epre.Pipeline.optimized_copy ~level prog in
          text_roundtrip_program p)
        Epre.Pipeline.all_levels)
    Epre_workloads.Workloads.all

let suite =
  [
    Alcotest.test_case "round trip: simple program" `Quick test_roundtrip_simple;
    Alcotest.test_case "round trip: every workload, every level" `Quick
      test_roundtrip_all_workloads;
    Alcotest.test_case "round trip: semantics" `Quick test_roundtrip_preserves_semantics;
    Alcotest.test_case "round trip: optimized CFG with holes" `Quick
      test_roundtrip_after_optimization;
    Alcotest.test_case "round trip: SSA form" `Quick test_roundtrip_ssa_form;
    Alcotest.test_case "parse: concise test source" `Quick test_parse_concise_source;
    Alcotest.test_case "parse: float exactness" `Quick test_parse_float_exactness;
    Alcotest.test_case "parse: errors" `Quick test_parse_errors;
  ]

(* Property: the text format round-trips fuzz-generated programs lowered
   to ILOC exactly (printing is injective on behaviour and stable). *)
let roundtrip_random_programs =
  Helpers.qcheck_case ~count:150 "Ir_text" "random programs round trip"
    Test_random_programs.gen_seed
    (fun seed ->
      let prog = Test_random_programs.compile seed in
      let text = Ir_text.print_program prog in
      let prog' = Ir_text.parse_program text in
      Ir_text.print_program prog' = text)

let suite = suite @ [ roundtrip_random_programs ]
