(** The Section 5.1 correctness discussion: "an expression defined in one
    basic block may not be referenced in another basic block" — inputs that
    violate the expression-name discipline historically broke PRE
    implementations. Our [Naming] pass re-establishes the discipline, so
    PRE must be safe on adversarial inputs shaped like the paper's sqrt
    example. *)

open Epre_ir

(* The paper's figure:

     r10 <- sqrt(r9)         r10's name is live across the block boundary
     if p branch
       (then)  r9 <- r1000   an operand of r10's expression changes
       r20 <- r10            ... and r10 is referenced here

   A naive PRE can hoist/rematerialize sqrt(r9) past the redefinition of
   r9 and feed r20 the *new* sqrt. With the discipline restored by Naming,
   the reference is split into a variable name and PRE keeps semantics. *)
let build_sqrt_example () =
  let b = Builder.start ~name:"f" ~nparams:2 in
  (* r0 = p, r1 = input *)
  let r9 = Builder.copy b 1 in
  let r10 = Builder.unop b Op.Sqrt r9 in
  let bthen = Builder.new_block b in
  let bjoin = Builder.new_block b in
  Builder.cbr b ~cond:0 ~ifso:bthen ~ifnot:bjoin;
  Builder.switch b bthen;
  let thousand = Builder.float b 1000.0 in
  Builder.copy_to b ~dst:r9 ~src:thousand;
  (* an unrelated evaluation of sqrt(r9) with a DIFFERENT target name:
     discipline violation *)
  let other = Builder.fresh_reg b in
  Builder.emit b (Instr.Unop { op = Op.Sqrt; dst = other; src = r9 });
  Builder.jump b bjoin;
  Builder.switch b bjoin;
  let r20 = Builder.copy b r10 in
  let sum = Builder.binop b Op.FAdd r20 r10 in
  Builder.ret b (Some sum);
  Builder.finish b

let run_f p prog =
  Helpers.run_float ~entry:"f" ~args:[ Value.I p; Value.F 16.0 ] prog

let test_naming_restores_discipline_for_pre () =
  let r = build_sqrt_example () in
  let prog = Program.create [ r ] in
  let expected_then = run_f 1 prog in
  let expected_else = run_f 0 prog in
  Alcotest.(check (float 1e-9)) "reference: both read the OLD sqrt" 8.0 expected_else;
  Alcotest.(check (float 1e-9)) "then path too" 8.0 expected_then;
  ignore (Epre_opt.Naming.run r);
  ignore (Epre_pre.Pre.run r);
  Routine.validate r;
  Alcotest.(check (float 1e-9)) "after PRE, else path" expected_else (run_f 0 prog);
  Alcotest.(check (float 1e-9)) "after PRE, then path" expected_then (run_f 1 prog)

(* Property: Naming establishes a bijection between expression keys and
   names — checked structurally after normalizing adversarial code. *)
let discipline_holds (r : Routine.t) =
  let name_of_key = Hashtbl.create 16 in
  let key_of_name = Hashtbl.create 16 in
  let ok = ref true in
  Cfg.iter_blocks
    (fun b ->
      List.iter
        (fun i ->
          match Epre_analysis.Expr_universe.key_of i, Instr.def i with
          | Some key, Some dst -> begin
            (match Hashtbl.find_opt name_of_key key with
            | Some d when d <> dst -> ok := false
            | _ -> Hashtbl.replace name_of_key key dst);
            match Hashtbl.find_opt key_of_name dst with
            | Some k when k <> key -> ok := false
            | _ -> Hashtbl.replace key_of_name dst key
          end
          | None, Some dst ->
            (* non-expression defs must not target an expression name *)
            if Hashtbl.mem key_of_name dst then
              (match i with
              | Instr.Copy _ | Instr.Call _ | Instr.Phi _ -> ok := false
              | _ -> ())
          | _ -> ())
        b.Block.instrs)
    r.Routine.cfg;
  !ok

let test_naming_bijection_on_adversarial_input () =
  let r = build_sqrt_example () in
  ignore (Epre_opt.Naming.run r);
  Alcotest.(check bool) "bijection holds" true (discipline_holds r)

let test_naming_bijection_on_gvn_output () =
  (* GVN renaming claims to construct the name space PRE requires. *)
  List.iter
    (fun w ->
      let prog = Epre_workloads.Workloads.compile w in
      List.iter
        (fun r ->
          ignore (Epre_gvn.Gvn.run r);
          ignore (Epre_opt.Naming.run r);
          Alcotest.(check bool)
            (w.Epre_workloads.Workloads.name ^ ": discipline after gvn+naming")
            true (discipline_holds r))
        (Program.routines prog))
    (List.filteri (fun i _ -> i mod 5 = 0) Epre_workloads.Workloads.all)

let suite =
  [
    Alcotest.test_case "5.1: sqrt example survives PRE" `Quick
      test_naming_restores_discipline_for_pre;
    Alcotest.test_case "5.1: naming bijection (adversarial)" `Quick
      test_naming_bijection_on_adversarial_input;
    Alcotest.test_case "5.1: naming bijection (gvn output)" `Slow
      test_naming_bijection_on_gvn_output;
  ]
