(* Test helper: hold an advisory [lockf] lock on argv.(1), touch argv.(2)
   to signal readiness, then linger until killed. Used by the cache-sweep
   test — OCaml 5 forbids [Unix.fork] once domains exist, so the live
   concurrent writer must be a real separate process. *)
let () =
  let target = Sys.argv.(1) and ready = Sys.argv.(2) in
  let fd = Unix.openfile target [ Unix.O_RDWR ] 0 in
  Unix.lockf fd Unix.F_LOCK 0;
  close_out (open_out ready);
  Unix.sleepf 30.0
