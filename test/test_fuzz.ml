(** Tests for the fuzz subsystem ([Epre_fuzz]): generator determinism and
    invariants, the source printer round trip, the differential oracle's
    two verdict directions (clean pipelines pass, chaos-injected
    pipelines fail), reduction quality (the ≤25%% acceptance bar), the
    corpus round trip, replay, and campaign determinism. *)

module Fuzz = Epre_fuzz
module Ast = Epre_frontend.Ast
module Ast_ops = Epre_frontend.Ast_ops
module Frontend = Epre_frontend.Frontend
module Harness = Epre_harness.Harness

let compile_ast ast =
  Frontend.compile_string (Ast_ops.print_program ast)

(* A couple of dozen seeds keeps this suite quick; `eprec fuzz` covers
   breadth in CI. *)
let seeds = List.init 25 (fun i -> 31 * i)

let chaos_spec = "chaos:drop-instr@2"

let chaos_config =
  { Fuzz.Oracle.default_config with
    chaos =
      (match Fuzz.Campaign.parse_chaos chaos_spec with
      | Ok c -> Some c
      | Error m -> failwith m);
    chaos_name = Some chaos_spec;
    fuel = 1_000_000 }

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)

let test_generator_deterministic () =
  List.iter
    (fun seed ->
      Alcotest.(check string)
        (Printf.sprintf "seed %d reproduces" seed)
        (Fuzz.Gen.source seed) (Fuzz.Gen.source seed))
    seeds;
  Alcotest.(check bool) "different seeds differ" false
    (String.equal (Fuzz.Gen.source 1) (Fuzz.Gen.source 2))

let test_generator_well_formed () =
  (* Every generated program compiles (well-typed) and interprets without
     a runtime error or fuel exhaustion (trap-free, terminating). *)
  List.iter
    (fun seed ->
      let prog = Frontend.compile_string (Fuzz.Gen.source seed) in
      match Harness.observe ~fuel:1_000_000 prog with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "seed %d: %s" seed m)
    seeds

let test_printer_round_trip () =
  (* print -> parse -> print is the identity on generated programs, and
     the reparse preserves behaviour. *)
  List.iter
    (fun seed ->
      let src = Fuzz.Gen.source seed in
      let reparsed = Frontend.parse_string src in
      Alcotest.(check string)
        (Printf.sprintf "seed %d reprint" seed)
        src
        (Ast_ops.print_program reparsed);
      let a = Harness.observe ~fuel:1_000_000 (Frontend.compile_string src) in
      let b = Harness.observe ~fuel:1_000_000 (compile_ast reparsed) in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d behaviour" seed)
        true (Harness.obs_equal a b))
    seeds

let test_ast_ops_indexing () =
  let ast =
    Frontend.parse_string
      "fn main(): int {\n  var x: int = 1;\n  if (x > 0) {\n    x = x + 2;\n  }\n  return x;\n}\n"
  in
  Alcotest.(check int) "stmt count" 4 (Ast_ops.stmt_count ast);
  (* Delete the [if] (index 1): its body goes with it. *)
  let deleted =
    Option.get (Ast_ops.transform_stmt ast 1 (fun _ -> Some []))
  in
  Alcotest.(check int) "after delete" 2 (Ast_ops.stmt_count deleted);
  (* Hoist its body instead. *)
  let hoisted =
    Option.get
      (Ast_ops.transform_stmt ast 1 (fun s ->
           match s.Ast.desc with
           | Ast.If (_, t, e) -> Some (t @ e)
           | _ -> None))
  in
  Alcotest.(check int) "after hoist" 3 (Ast_ops.stmt_count hoisted);
  Alcotest.(check (option pass)) "out of range" None
    (Ast_ops.transform_stmt ast 99 (fun _ -> Some []))

(* ------------------------------------------------------------------ *)
(* Oracle                                                              *)

let test_oracle_clean () =
  List.iter
    (fun seed ->
      let prog = Frontend.compile_string (Fuzz.Gen.source seed) in
      let cfg = { Fuzz.Oracle.default_config with fuel = 1_000_000 } in
      match Fuzz.Oracle.check cfg prog with
      | [] -> ()
      | f :: _ ->
        Alcotest.failf "seed %d: false positive %s at %s" seed
          (Fuzz.Oracle.class_to_string f.Fuzz.Oracle.cls)
          (Epre.Pipeline.level_to_string f.Fuzz.Oracle.level))
    seeds

let test_oracle_catches_chaos () =
  List.iter
    (fun seed ->
      let prog = Frontend.compile_string (Fuzz.Gen.source seed) in
      match Fuzz.Oracle.check chaos_config prog with
      | [] -> Alcotest.failf "seed %d: chaos fault not detected" seed
      | _ -> ())
    [ 0; 7; 42 ]

let test_oracle_pinpoint () =
  let prog = Frontend.compile_string (Fuzz.Gen.source 7) in
  let cfg = { chaos_config with pinpoint = true } in
  match Fuzz.Oracle.check cfg prog with
  | [] -> Alcotest.fail "chaos fault not detected"
  | f :: _ ->
    (match f.Fuzz.Oracle.culprit with
    | None -> Alcotest.fail "pinpoint produced no culprit"
    | Some c ->
      Alcotest.(check string)
        "culprit is the injected fault" "chaos:drop-instr" c.Epre_harness.Bisect.pass)

let test_failure_record_meta () =
  let prog = Frontend.compile_string (Fuzz.Gen.source 7) in
  match Fuzz.Oracle.check chaos_config prog with
  | [] -> Alcotest.fail "chaos fault not detected"
  | f :: _ ->
    let record =
      Fuzz.Oracle.failure_record ~seed:7 ~chaos:chaos_spec
        ~repro:"corpus/x/repro.mf" f
    in
    let json = Epre_harness.Report.record_to_json record in
    List.iter
      (fun needle ->
        if not (Helpers.contains_substring ~needle json) then
          Alcotest.failf "record %s lacks %S" json needle)
      [ "\"fuzz_seed\":7"; "\"fuzz_level\":"; "\"fuzz_class\":";
        "\"fuzz_chaos\":\"chaos:drop-instr@2\"";
        "\"fuzz_repro\":\"corpus/x/repro.mf\"" ]

(* ------------------------------------------------------------------ *)
(* Reduction (the acceptance bar: chaos repro shrinks to <= 25%)       *)

let reduce_chaos_failure seed =
  let ast = Fuzz.Gen.program seed in
  let prog = compile_ast ast in
  match Fuzz.Oracle.check chaos_config prog with
  | [] -> Alcotest.failf "seed %d: chaos fault not detected" seed
  | f :: _ ->
    let still =
      Fuzz.Campaign.still_fails chaos_config ~level:f.Fuzz.Oracle.level
        ~cls:f.Fuzz.Oracle.cls
    in
    let reduced, stats = Fuzz.Reduce.run ~still_fails:still ast in
    (f, still, reduced, stats)

let test_reduction_quality () =
  let _, still, reduced, stats = reduce_chaos_failure 42 in
  Alcotest.(check bool) "reduced still fails" true (still reduced);
  let ratio =
    float_of_int stats.Fuzz.Reduce.reduced_stmts
    /. float_of_int stats.Fuzz.Reduce.original_stmts
  in
  if ratio > 0.25 then
    Alcotest.failf "reduction too weak: %d -> %d statements (%.0f%%)"
      stats.Fuzz.Reduce.original_stmts stats.Fuzz.Reduce.reduced_stmts
      (100. *. ratio);
  Alcotest.(check bool) "reducer reports progress" true
    (stats.Fuzz.Reduce.accepted > 0 && stats.Fuzz.Reduce.tried >= stats.Fuzz.Reduce.accepted)

(* ------------------------------------------------------------------ *)
(* Corpus + campaign                                                   *)

let corpus_dir = "fuzz-test-corpus"

let test_corpus_round_trip () =
  let _, _, reduced, stats = reduce_chaos_failure 11 in
  let prog = compile_ast reduced in
  match Fuzz.Oracle.check { chaos_config with pinpoint = false } prog with
  | [] -> Alcotest.fail "reduced program no longer fails"
  | f :: _ ->
    let id =
      Fuzz.Corpus.entry_id ~seed:11 ~level:f.Fuzz.Oracle.level
        ~cls:f.Fuzz.Oracle.cls
    in
    let entry =
      { Fuzz.Corpus.id; seed = 11; level = f.Fuzz.Oracle.level;
        cls = f.Fuzz.Oracle.cls; chaos = Some chaos_spec;
        reduction = Some stats;
        record =
          Fuzz.Oracle.failure_record ~seed:11 ~chaos:chaos_spec f;
        repro_source = Ast_ops.print_program reduced }
    in
    let dir =
      Fuzz.Corpus.save ~dir:corpus_dir ~original:(Fuzz.Gen.source 11) entry
    in
    (match Fuzz.Corpus.load dir with
    | Error m -> Alcotest.failf "load: %s" m
    | Ok e ->
      Alcotest.(check string) "id" entry.Fuzz.Corpus.id e.Fuzz.Corpus.id;
      Alcotest.(check int) "seed" 11 e.Fuzz.Corpus.seed;
      Alcotest.(check string) "class"
        (Fuzz.Oracle.class_to_string entry.Fuzz.Corpus.cls)
        (Fuzz.Oracle.class_to_string e.Fuzz.Corpus.cls);
      Alcotest.(check (option string)) "chaos" (Some chaos_spec) e.Fuzz.Corpus.chaos;
      Alcotest.(check string) "source" entry.Fuzz.Corpus.repro_source
        e.Fuzz.Corpus.repro_source;
      (match e.Fuzz.Corpus.reduction with
      | None -> Alcotest.fail "reduction stats lost"
      | Some r ->
        Alcotest.(check int) "reduced_stmts" stats.Fuzz.Reduce.reduced_stmts
          r.Fuzz.Reduce.reduced_stmts));
    (* replay agrees with the stored signature *)
    (match Fuzz.Campaign.replay dir with
    | Error m -> Alcotest.failf "replay: %s" m
    | Ok (_, Fuzz.Campaign.Still_fails _) -> ()
    | Ok (_, verdict) ->
      Alcotest.failf "replay verdict %s"
        (Fuzz.Campaign.replay_result_to_string verdict));
    Alcotest.(check bool) "listed" true
      (List.mem entry.Fuzz.Corpus.id (Fuzz.Corpus.list ~dir:corpus_dir))

let test_campaign_deterministic () =
  let cfg = { Fuzz.Campaign.default_config with runs = 20; seed = 42 } in
  let s1 = Fuzz.Campaign.run cfg in
  let s2 = Fuzz.Campaign.run cfg in
  Alcotest.(check string) "summaries identical"
    (Fuzz.Campaign.summary_to_json s1)
    (Fuzz.Campaign.summary_to_json s2);
  Alcotest.(check int) "clean campaign" 0 s1.Fuzz.Campaign.cases_failed

let test_campaign_chaos_end_to_end () =
  let cfg =
    { Fuzz.Campaign.default_config with
      runs = 1; seed = 7; chaos = Some chaos_spec;
      levels = [ Epre.Pipeline.Baseline ];
      corpus_dir = Some corpus_dir }
  in
  let s = Fuzz.Campaign.run cfg in
  Alcotest.(check int) "one failing case" 1 s.Fuzz.Campaign.cases_failed;
  Alcotest.(check bool) "failures reduced" true
    (s.Fuzz.Campaign.reduced = List.length s.Fuzz.Campaign.failures);
  (match s.Fuzz.Campaign.saved with
  | [] -> Alcotest.fail "nothing saved"
  | dirs ->
    List.iter
      (fun d ->
        match Fuzz.Campaign.replay d with
        | Ok (_, Fuzz.Campaign.Still_fails _) -> ()
        | Ok (_, v) ->
          Alcotest.failf "replay %s: %s" d
            (Fuzz.Campaign.replay_result_to_string v)
        | Error m -> Alcotest.failf "replay %s: %s" d m)
      dirs);
  let json = Fuzz.Campaign.summary_to_json s in
  match Epre_telemetry.Tjson.parse json with
  | Error m -> Alcotest.failf "summary is not valid JSON: %s" m
  | Ok doc ->
    (match Epre_telemetry.Tjson.member "classes" doc with
    | Some (Epre_telemetry.Tjson.Obj (_ :: _)) -> ()
    | _ -> Alcotest.fail "summary lacks class counts")

let test_parse_chaos_errors () =
  (match Fuzz.Campaign.parse_chaos "chaos:drop-instr@banana" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad position accepted");
  match Fuzz.Campaign.parse_chaos "not-a-pass" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown pass accepted"

let suite =
  [
    Alcotest.test_case "generator: deterministic" `Quick test_generator_deterministic;
    Alcotest.test_case "generator: well-typed, trap-free" `Quick
      test_generator_well_formed;
    Alcotest.test_case "printer: round trip" `Quick test_printer_round_trip;
    Alcotest.test_case "ast ops: indexed edits" `Quick test_ast_ops_indexing;
    Alcotest.test_case "oracle: clean pipelines pass" `Quick test_oracle_clean;
    Alcotest.test_case "oracle: chaos faults caught" `Quick test_oracle_catches_chaos;
    Alcotest.test_case "oracle: pinpoints the culprit" `Quick test_oracle_pinpoint;
    Alcotest.test_case "oracle: record meta provenance" `Quick
      test_failure_record_meta;
    Alcotest.test_case "reduce: chaos repro shrinks to <= 25%" `Quick
      test_reduction_quality;
    Alcotest.test_case "corpus: save/load/replay round trip" `Quick
      test_corpus_round_trip;
    Alcotest.test_case "campaign: deterministic summary" `Quick
      test_campaign_deterministic;
    Alcotest.test_case "campaign: chaos end to end" `Quick
      test_campaign_chaos_end_to_end;
    Alcotest.test_case "campaign: chaos spec errors" `Quick test_parse_chaos_errors;
  ]
