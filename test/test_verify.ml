(** Tests for [Epre_verify]: a negative corpus with one deliberately
    ill-formed routine per rule id (every V/T/L rule in the catalog must
    be triggerable, and the coverage test pins the two lists together),
    clean-bill assertions for every workload at every optimization level,
    and the plumbing that carries rule ids outward — harness rollback
    meta ([verify_rule]) and fuzz verdicts ([failure.rule] / [fuzz_rule]). *)

open Epre_ir
module Verify = Epre_verify.Verify
module Analyze = Epre_verify.Analyze
module Diag = Epre_verify.Diag
module Rules = Epre_verify.Rules
module Harness = Epre_harness.Harness
module Fuzz = Epre_fuzz

let parse text = Ir_text.parse_program ~validate:false text

(* The textual format has no SSA marker; tests that need a routine in SSA
   form (phi rules, [Ssa_check], rank lints) set the flag by hand. *)
let with_ssa name prog =
  (Program.find_exn prog name).Routine.in_ssa <- true;
  prog

let rules_of diags = List.map (fun d -> d.Diag.rule) diags

let show diags =
  if diags = [] then "<no diagnostics>" else Verify.render diags

(* ------------------------------------------------------------------ *)
(* Negative corpus: one snippet per rule id.                           *)

(* Each entry: (rule id, thunk producing the full diagnostic list for a
   program built to violate exactly that rule — incidental co-diagnostics
   are fine, absence of the named rule is the failure). *)
let negatives : (string * (unit -> Diag.t list)) list =
  let check ?(lints = false) prog =
    let config = if lints then Verify.lint_config else Verify.default in
    Verify.check_program ~config prog
  in
  (* Audit negatives: run the redundancy auditor over routine [f],
     optionally against a baseline text (the "before" of the
     transformation under audit). *)
  let audit ?expect_pre ?baseline text =
    let baseline =
      Option.map (fun b -> Program.find_exn (parse b) "f") baseline
    in
    match
      Analyze.check_routine ?expect_pre ?baseline
        (Program.find_exn (parse text) "f")
    with
    | Some (_, diags) -> diags
    | None -> []
  in
  [
    ( "V001",
      fun () ->
        (* No textual spelling for a blockless routine: the parser needs at
           least one block. Built directly — entry 0 of an empty CFG. *)
        let cfg = Cfg.create () in
        let r = Routine.create ~name:"f" ~params:[] ~cfg ~next_reg:0 in
        check (Program.create [ r ]) );
    ( "V002",
      fun () ->
        check
          (parse {|
routine f() entry B0 regs 1 {
B0:
  jump B7
}
|}) );
    ( "V003",
      fun () ->
        check
          (parse
             {|
routine f() entry B0 regs 1 {
B0:
  r0 = add r0, r5
  return r0
}
|})
    );
    ( "V004",
      fun () ->
        check
          (parse
             {|
routine f(r0) entry B0 regs 3 {
B0:
  r1 = const 1
  r2 = phi(B0: r0)
  return r1
}
|})
    );
    ( "V005",
      fun () ->
        (* Entry has no predecessors; the phi names one. *)
        check
          (parse
             {|
routine f(r0) entry B0 regs 2 {
B0:
  r1 = phi(B0: r0)
  return r1
}
|})
    );
    ( "V006",
      fun () ->
        (* A well-placed, well-predicated phi in a routine that is not in
           SSA form. *)
        check
          (parse
             {|
routine f(r0) entry B0 regs 4 {
B0:
  cbr r0, B1, B2
B1:
  r1 = const 1
  jump B3
B2:
  r2 = const 2
  jump B3
B3:
  r3 = phi(B1: r1, B2: r2)
  return r3
}
|})
    );
    ( "V007",
      fun () ->
        (* Two definitions of r2 with the SSA flag set. *)
        check
          (with_ssa "f"
             (parse
                {|
routine f(r0, r1) entry B0 regs 3 {
B0:
  r2 = add r0, r1
  r2 = mul r0, r1
  return r2
}
|}))
    );
    ( "V008",
      fun () ->
        (* r1 is defined on one arm of the diamond only. *)
        check
          (parse
             {|
routine f(r0) entry B0 regs 2 {
B0:
  cbr r0, B1, B2
B1:
  r1 = const 1
  jump B3
B2:
  jump B3
B3:
  return r1
}
|})
    );
    ( "V009",
      fun () ->
        check
          (parse
             {|
routine f() entry B0 regs 1 {
B0:
  r0 = const 0
  return r0
B1:
  jump B0
}
|})
    );
    ( "V010",
      fun () ->
        check (parse {|
routine f() entry B0 regs 1 {
B0:
  jump B0
}
|}) );
    ( "T001",
      fun () ->
        check
          (parse
             {|
routine f() entry B0 regs 2 {
B0:
  r0 = const 1.5
  r1 = add r0, r0
  return r1
}
|})
    );
    ( "T002",
      fun () ->
        check
          (parse
             {|
routine f() entry B0 regs 2 {
B0:
  r0 = const 2.5
  r1 = not r0
  return r1
}
|})
    );
    ( "T003",
      fun () ->
        check
          (parse
             {|
routine f() entry B0 regs 2 {
B0:
  r0 = const 1.5
  r1 = load r0
  return r1
}
|})
    );
    ( "T004",
      fun () ->
        check
          (parse
             {|
routine f() entry B0 regs 1 {
B0:
  r0 = const 1.5
  cbr r0, B1, B2
B1:
  return
B2:
  return
}
|})
    );
    ( "T005",
      fun () ->
        (* Int on one arm, float on the other, joined by the phi. *)
        check
          (with_ssa "f"
             (parse
                {|
routine f(r0) entry B0 regs 4 {
B0:
  cbr r0, B1, B2
B1:
  r1 = const 1
  jump B3
B2:
  r2 = const 2.5
  jump B3
B3:
  r3 = phi(B1: r1, B2: r2)
  return r3
}
|}))
    );
    ( "T006",
      fun () ->
        check
          (parse
             {|
routine f() entry B0 regs 1 {
B0:
  r0 = const 1
  r0 = const 2.5
  return r0
}
|})
    );
    ( "T007",
      fun () ->
        check
          (parse
             {|
routine g(r0) entry B0 regs 1 {
B0:
  return r0
}
routine f() entry B0 regs 1 {
B0:
  r0 = call g()
  return r0
}
|})
    );
    ( "T008",
      fun () ->
        check
          (parse
             {|
routine f() entry B0 regs 1 {
B0:
  r0 = call nosuch()
  return r0
}
|})
    );
    ( "T009",
      fun () ->
        (* g's body pins its parameter to int; f passes a float. *)
        check
          (parse
             {|
routine g(r0) entry B0 regs 2 {
B0:
  r1 = add r0, r0
  return r1
}
routine f() entry B0 regs 2 {
B0:
  r0 = const 1.5
  r1 = call g(r0)
  return r1
}
|})
    );
    ( "T010",
      fun () ->
        check
          (parse
             {|
routine g() entry B0 regs 1 {
B0:
  return
}
routine f() entry B0 regs 1 {
B0:
  r0 = call g()
  return r0
}
|})
    );
    ( "T011",
      fun () ->
        check
          (parse
             {|
routine g(r0) entry B0 regs 1 {
B0:
  cbr r0, B1, B2
B1:
  return r0
B2:
  return
}
|})
    );
    ( "T012",
      fun () ->
        (* Int-initialised allocation, float stored into it. *)
        check
          (parse
             {|
routine f() entry B0 regs 2 {
B0:
  r0 = alloca 4, 0
  r1 = const 1.5
  store r0, r1
  return
}
|})
    );
    ( "L001",
      fun () ->
        (* B0 -> B2 leaves a multi-successor block and enters a
           multi-predecessor block: a critical edge. *)
        check ~lints:true
          (parse
             {|
routine f(r0) entry B0 regs 1 {
B0:
  cbr r0, B1, B2
B1:
  jump B2
B2:
  return r0
}
|})
    );
    ( "L002",
      fun () ->
        check ~lints:true
          (parse
             {|
routine f(r0) entry B0 regs 2 {
B0:
  r1 = add r0, r0
  return r0
}
|})
    );
    ( "L003",
      fun () ->
        check ~lints:true
          (parse
             {|
routine f(r0) entry B0 regs 2 {
B0:
  r1 = copy r0
  return r0
}
|})
    );
    ( "L004",
      fun () ->
        check ~lints:true
          (parse
             {|
routine f() entry B0 regs 1 {
B0:
  r0 = const 0
  jump B1
B1:
  jump B2
B2:
  return r0
}
|})
    );
    ( "L005",
      fun () ->
        (* Both phi arguments are the same register. *)
        check ~lints:true
          (with_ssa "f"
             (parse
                {|
routine f(r0) entry B0 regs 3 {
B0:
  r1 = const 1
  cbr r0, B1, B2
B1:
  jump B3
B2:
  jump B3
B3:
  r2 = phi(B1: r1, B2: r1)
  return r2
}
|}))
    );
    ( "L006",
      fun () ->
        (* A genuine join whose result is never read. *)
        check ~lints:true
          (with_ssa "f"
             (parse
                {|
routine f(r0) entry B0 regs 4 {
B0:
  cbr r0, B1, B2
B1:
  r1 = const 1
  jump B3
B2:
  r2 = const 2
  jump B3
B3:
  r3 = phi(B1: r1, B2: r2)
  return r0
}
|}))
    );
    ( "L007",
      fun () ->
        (* Operands out of rank order: the parameter (rank of the entry
           block) before the constant (rank 0). *)
        check ~lints:true
          (with_ssa "f"
             (parse
                {|
routine f(r0) entry B0 regs 3 {
B0:
  r1 = const 2
  r2 = add r0, r1
  return r2
}
|}))
    );
    ( "A001",
      fun () ->
        (* The expression is re-evaluated into its canonical name while
           still available — a deletion CSE/PRE at ≥ the partial level
           must not leave behind. *)
        audit ~expect_pre:true
          {|
routine f(r0, r1) entry B0 regs 4 {
B0:
  r2 = add r0, r1
  r3 = mul r2, r0
  r2 = add r0, r1
  return r2
}
|}
    );
    ( "A002",
      fun () ->
        (* The diamond's join re-evaluates what one arm already computed;
           a safe placement on the other arm's edge would cover it. *)
        audit ~expect_pre:true
          {|
routine f(r0, r1) entry B0 regs 4 {
B0:
  cbr r0, B1, B2
B1:
  r2 = add r0, r1
  jump B3
B2:
  jump B3
B3:
  r2 = add r0, r1
  return r2
}
|}
    );
    ( "A003",
      fun () ->
        (* "Code motion" hoisted the evaluation above the branch; the B2
           path never needs it — not down-safe. *)
        audit
          ~baseline:
            {|
routine f(r0, r1) entry B0 regs 4 {
B0:
  cbr r0, B1, B2
B1:
  r2 = add r0, r1
  return r2
B2:
  return r0
}
|}
          {|
routine f(r0, r1) entry B0 regs 4 {
B0:
  r2 = add r0, r1
  cbr r0, B1, B2
B1:
  return r2
B2:
  return r0
}
|}
    );
    ( "A004",
      fun () ->
        (* The only path now evaluates add(r0, r1) twice. *)
        audit
          ~baseline:
            {|
routine f(r0, r1) entry B0 regs 3 {
B0:
  r2 = add r0, r1
  return r2
}
|}
          {|
routine f(r0, r1) entry B0 regs 4 {
B0:
  r2 = add r0, r1
  r3 = add r0, r1
  return r3
}
|}
    );
    ( "A005",
      fun () ->
        (* Three temporaries overlap where the baseline chained them:
           peak pressure 3 against 2. *)
        audit
          ~baseline:
            {|
routine f(r0) entry B0 regs 4 {
B0:
  r1 = add r0, r0
  r2 = mul r1, r1
  r3 = add r2, r0
  return r3
}
|}
          {|
routine f(r0) entry B0 regs 7 {
B0:
  r1 = add r0, r0
  r2 = mul r0, r0
  r3 = sub r0, r0
  r5 = add r1, r2
  r6 = add r5, r3
  return r6
}
|}
    );
    ( "A006",
      fun () ->
        (* The temporary stays live across the whole 8-block chain. *)
        audit
          {|
routine f(r0) entry B0 regs 2 {
B0:
  r1 = add r0, r0
  jump B1
B1:
  jump B2
B2:
  jump B3
B3:
  jump B4
B4:
  jump B5
B5:
  jump B6
B6:
  jump B7
B7:
  jump B8
B8:
  return r1
}
|}
    );
    ( "A007",
      fun () ->
        (* r3 recomputes the value r2 definitely holds — congruent by
           the conservative non-SSA value numbering. *)
        audit
          {|
routine f(r0, r1) entry B0 regs 5 {
B0:
  r2 = add r0, r1
  r3 = add r0, r1
  r4 = mul r2, r3
  return r4
}
|}
    );
  ]

let test_negative rule thunk () =
  let diags = thunk () in
  if not (List.mem rule (rules_of diags)) then
    Alcotest.failf "expected %s to fire; got:\n%s" rule (show diags)

(* Every rule in the catalog is exercised above, and every id above is a
   registered rule — the two lists are pinned to each other so a new rule
   cannot land without a negative test. *)
let test_catalog_coverage () =
  let catalog = List.sort compare (List.map (fun r -> r.Rules.id) Rules.all) in
  let covered = List.sort compare (List.map fst negatives) in
  Alcotest.(check (list string)) "one negative test per catalog rule" catalog covered

let test_severities_match_catalog () =
  List.iter
    (fun (rule, thunk) ->
      let expect =
        match Rules.find rule with
        | Some r -> r.Rules.severity
        | None -> Alcotest.failf "%s not in catalog" rule
      in
      List.iter
        (fun d ->
          if d.Diag.rule = rule && d.Diag.severity <> expect then
            Alcotest.failf "%s: severity %s, catalog says %s" rule
              (Diag.severity_to_string d.Diag.severity)
              (Diag.severity_to_string expect))
        (thunk ()))
    negatives

(* ------------------------------------------------------------------ *)
(* Clean bills: the verifier accepts what the compiler produces.       *)

let test_workloads_clean_all_levels () =
  List.iter
    (fun (w : Epre_workloads.Workloads.t) ->
      let unopt = Epre_workloads.Workloads.compile w in
      (match Verify.errors (Verify.check_program unopt) with
      | [] -> ()
      | errs ->
        Alcotest.failf "%s unoptimized:\n%s" w.Epre_workloads.Workloads.name
          (Verify.render errs));
      List.iter
        (fun level ->
          let opt, _ = Epre.Pipeline.optimized_copy ~level unopt in
          match Verify.errors (Verify.check_program opt) with
          | [] -> ()
          | errs ->
            Alcotest.failf "%s at %s:\n%s" w.Epre_workloads.Workloads.name
              (Epre.Pipeline.level_to_string level)
              (Verify.render errs))
        Epre.Pipeline.all_levels)
    Epre_workloads.Workloads.all

(* ------------------------------------------------------------------ *)
(* Rule-id plumbing: harness rollback meta and fuzz verdicts.          *)

(* A pass that wires the entry terminator to a missing block — the
   verifier's V002, deterministically, in every routine it touches. *)
let breaker =
  {
    Harness.pass_name = "test:break-term";
    run =
      (fun r ->
        (Cfg.block r.Routine.cfg (Cfg.entry r.Routine.cfg)).Block.term <-
          Instr.Jump 99);
  }

let test_harness_records_verify_rule () =
  let prog = Helpers.compile "fn main(): int { return 42; }" in
  let records =
    Harness.supervise
      { Harness.default_config with Harness.validation = Harness.Ir }
      ~passes:[ breaker ] prog
  in
  match records with
  | [ ({ Harness.outcome = Harness.Rolled_back (Harness.Ir_violation m); _ } as r) ] ->
    Alcotest.(check bool) "message names the rule" true
      (Helpers.contains_substring ~needle:"V002" m);
    (match List.assoc_opt "verify_rule" r.Harness.meta with
    | Some (Epre_telemetry.Tjson.Str id) ->
      Alcotest.(check string) "verify_rule meta" "V002" id
    | _ -> Alcotest.fail "verify_rule missing from rollback meta")
  | _ -> Alcotest.fail "expected exactly one IR-violation rollback"

let test_oracle_carries_rule () =
  let prog = Helpers.compile "fn main(): int { return 42; }" in
  let cfg =
    { Fuzz.Oracle.default_config with
      Fuzz.Oracle.levels = [ Epre.Pipeline.Partial ];
      chaos = Some (0, breaker);
      chaos_name = Some "test:break-term";
      fuel = 1_000_000 }
  in
  match Fuzz.Oracle.check cfg prog with
  | [] -> Alcotest.fail "chaos fault not detected"
  | f :: _ ->
    Alcotest.(check string) "class" "ir-violation"
      (Fuzz.Oracle.class_to_string f.Fuzz.Oracle.cls);
    (match f.Fuzz.Oracle.rule with
    | Some id -> Alcotest.(check string) "failure.rule" "V002" id
    | None -> Alcotest.fail "Ir_violation failure lost its rule id");
    let record = Fuzz.Oracle.failure_record ~seed:7 ~chaos:"test:break-term" f in
    (match List.assoc_opt "fuzz_rule" record.Harness.meta with
    | Some (Epre_telemetry.Tjson.Str id) ->
      Alcotest.(check string) "fuzz_rule meta" "V002" id
    | _ -> Alcotest.fail "fuzz_rule missing from failure record meta")

(* ------------------------------------------------------------------ *)
(* Post-pass lint registry.                                            *)

let test_postconditions_registered () =
  List.iter
    (fun (pass, rules) ->
      Alcotest.(check bool)
        (pass ^ " has a non-empty postcondition") true (rules <> []);
      List.iter
        (fun r ->
          Alcotest.(check bool) (r ^ " is a lint") true
            (List.mem r Rules.lint_ids))
        rules)
    Verify.postcondition_table;
  Alcotest.(check (list string)) "unregistered pass has none" []
    (Verify.postconditions "no-such-pass")

let suite =
  List.map
    (fun (rule, thunk) ->
      Alcotest.test_case ("negative " ^ rule) `Quick (test_negative rule thunk))
    negatives
  @ [
      Alcotest.test_case "catalog coverage" `Quick test_catalog_coverage;
      Alcotest.test_case "severities match catalog" `Quick
        test_severities_match_catalog;
      Alcotest.test_case "workloads clean at every level" `Quick
        test_workloads_clean_all_levels;
      Alcotest.test_case "harness meta carries verify_rule" `Quick
        test_harness_records_verify_rule;
      Alcotest.test_case "oracle verdicts carry the rule id" `Quick
        test_oracle_carries_rule;
      Alcotest.test_case "postcondition registry is well-formed" `Quick
        test_postconditions_registered;
    ]
