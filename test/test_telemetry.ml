(** The telemetry subsystem: Tjson encode/parse round-trips, span
    nesting/balance (including under exceptions), the no-op disabled path,
    Chrome trace well-formedness (parsed back and validated — one span per
    (routine, stage), monotonic timestamps, balanced nesting), counters
    accumulation across routines, harness wall-clock timing, and the
    --profile / --metrics rendering smoke tests. *)

open Epre_telemetry

(* ------------------------------------------------------------------ *)
(* Tjson                                                               *)

let test_tjson_roundtrip () =
  let v =
    Tjson.Obj
      [
        ("null", Tjson.Null);
        ("bools", Tjson.Arr [ Tjson.Bool true; Tjson.Bool false ]);
        ("int", Tjson.Int (-42));
        ("float", Tjson.Float 1.25);
        ("integral_float", Tjson.Float 3.0);
        ("string", Tjson.Str "quote \" backslash \\ newline \n tab \t");
        ("nested", Tjson.Obj [ ("empty_arr", Tjson.Arr []); ("empty_obj", Tjson.Obj []) ]);
      ]
  in
  match Tjson.parse (Tjson.to_string v) with
  | Error msg -> Alcotest.failf "round-trip parse failed: %s" msg
  | Ok parsed ->
    (* Integral floats intentionally re-read as ints; normalize both. *)
    let rec norm = function
      | Tjson.Float f when Float.is_integer f -> Tjson.Int (int_of_float f)
      | Tjson.Arr xs -> Tjson.Arr (List.map norm xs)
      | Tjson.Obj kvs -> Tjson.Obj (List.map (fun (k, x) -> (k, norm x)) kvs)
      | x -> x
    in
    Alcotest.(check bool) "round-trips" true (norm v = norm parsed)

let test_tjson_rejects () =
  List.iter
    (fun s ->
      match Tjson.parse s with
      | Ok _ -> Alcotest.failf "parser accepted malformed input %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "[1] trailing"; "\"unterminated"; "nul"; "{'a':1}" ]

let test_tjson_unicode () =
  match Tjson.parse {|"aéb"|} with
  | Ok (Tjson.Str s) -> Alcotest.(check string) "utf-8 decoded" "a\xc3\xa9b" s
  | Ok _ | Error _ -> Alcotest.fail "unicode escape did not parse to a string"

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)

exception Boom

let test_span_nesting_and_exceptions () =
  let spans =
    Telemetry.with_recorder (fun rc ->
        Telemetry.Span.with_ ~kind:"outer" ~name:"outer" (fun () ->
            Telemetry.Span.with_ ~kind:"inner" ~name:"ok-child" (fun () -> ());
            try
              Telemetry.Span.with_ ~kind:"inner" ~name:"raising-child" (fun () ->
                  raise Boom)
            with Boom -> ());
        (* Depth must be balanced after nested spans and a caught raise. *)
        Telemetry.Span.with_ ~name:"after" (fun () -> ());
        Telemetry.spans rc)
  in
  let find name = List.find (fun s -> s.Telemetry.name = name) spans in
  Alcotest.(check int) "span count" 4 (List.length spans);
  Alcotest.(check int) "outer depth" 0 (find "outer").Telemetry.depth;
  Alcotest.(check int) "child depth" 1 (find "ok-child").Telemetry.depth;
  Alcotest.(check int) "raising child depth" 1 (find "raising-child").Telemetry.depth;
  Alcotest.(check int) "post-exception depth balanced" 0 (find "after").Telemetry.depth;
  Alcotest.(check bool) "raise recorded" true (find "raising-child").Telemetry.raised;
  Alcotest.(check bool) "no spurious raise flag" false (find "outer").Telemetry.raised;
  (* Completion order: children close before their parent. *)
  let names = List.map (fun s -> s.Telemetry.name) spans in
  Alcotest.(check (list string)) "completion order"
    [ "ok-child"; "raising-child"; "outer"; "after" ] names

let test_span_escaping_exception_balances () =
  let spans =
    Telemetry.with_recorder (fun rc ->
        (try
           Telemetry.Span.with_ ~name:"outer" (fun () ->
               Telemetry.Span.with_ ~name:"inner" (fun () -> raise Boom))
         with Boom -> ());
        Telemetry.Span.with_ ~name:"after" (fun () -> ());
        Telemetry.spans rc)
  in
  let find name = List.find (fun s -> s.Telemetry.name = name) spans in
  Alcotest.(check bool) "inner raised" true (find "inner").Telemetry.raised;
  Alcotest.(check bool) "outer raised" true (find "outer").Telemetry.raised;
  Alcotest.(check int) "depth rebalanced" 0 (find "after").Telemetry.depth

let test_disabled_is_noop () =
  Telemetry.uninstall ();
  Alcotest.(check bool) "disabled" false (Telemetry.enabled ());
  let v = Telemetry.Span.with_ ~name:"ignored" (fun () -> 17) in
  Alcotest.(check int) "value passes through" 17 v;
  let spans = Telemetry.with_recorder (fun rc -> Telemetry.spans rc) in
  Alcotest.(check int) "nothing was recorded" 0 (List.length spans)

(* ------------------------------------------------------------------ *)
(* Chrome trace of a pipeline run                                      *)

let distribution_stages =
  [ "reassociation"; "gvn"; "pre"; "constprop"; "peephole"; "dce"; "coalesce";
    "pre"; "dce"; "clean" ]

let trace_of_optimized_workload () =
  let w = Option.get (Epre_workloads.Workloads.find "saxpy") in
  let prog = Epre_workloads.Workloads.compile w in
  Telemetry.with_recorder (fun rc ->
      ignore (Epre.Pipeline.optimize ~level:Epre.Pipeline.Distribution prog);
      (Telemetry.spans rc, List.map (fun (r : Epre_ir.Routine.t) -> r.Epre_ir.Routine.name)
                             (Epre_ir.Program.routines prog)))

let test_chrome_trace_wellformed () =
  let spans, routines = trace_of_optimized_workload () in
  let json =
    match Tjson.parse (Chrome_trace.to_string spans) with
    | Ok j -> j
    | Error msg -> Alcotest.failf "trace JSON malformed: %s" msg
  in
  let events =
    match Tjson.member "traceEvents" json with
    | Some (Tjson.Arr evs) -> evs
    | _ -> Alcotest.fail "traceEvents array missing"
  in
  Alcotest.(check bool) "has events" true (events <> []);
  let str_field name ev =
    match Tjson.member name ev with
    | Some (Tjson.Str s) -> s
    | _ -> Alcotest.failf "event field %s missing or not a string" name
  in
  let num_field name ev =
    match Tjson.member name ev with
    | Some (Tjson.Int i) -> float_of_int i
    | Some (Tjson.Float f) -> f
    | _ -> Alcotest.failf "event field %s missing or not a number" name
  in
  (* Every event is a complete event with monotone non-decreasing ts. *)
  List.iter
    (fun ev -> Alcotest.(check string) "phase" "X" (str_field "ph" ev))
    events;
  let ts = List.map (num_field "ts") events in
  Alcotest.(check bool) "timestamps monotone" true (ts = List.sort compare ts);
  (* One "pass" event per (routine, stage occurrence) of the level —
     [pre] and [dce] run twice (main round and the post-coalesce cleanup
     round), everything else once. *)
  let pass_events =
    List.filter (fun ev -> str_field "cat" ev = "pass") events
  in
  List.iter
    (fun routine ->
      List.iter
        (fun stage ->
          let expected =
            List.length (List.filter (String.equal stage) distribution_stages)
          in
          let n =
            List.length
              (List.filter
                 (fun ev ->
                   str_field "name" ev = stage
                   && (match Tjson.member "args" ev with
                      | Some args -> Tjson.member "routine" args = Some (Tjson.Str routine)
                      | None -> false))
                 pass_events)
          in
          Alcotest.(check int)
            (Printf.sprintf "spans for (%s, %s)" routine stage)
            expected n)
        (List.sort_uniq compare distribution_stages))
    routines;
  (* Balanced nesting: on the single track, events either nest or are
     disjoint — no partial overlap. *)
  let intervals =
    List.map (fun ev -> (num_field "ts" ev, num_field "ts" ev +. num_field "dur" ev)) events
  in
  List.iteri
    (fun i (s1, e1) ->
      List.iteri
        (fun j (s2, e2) ->
          if i < j && s2 < e1 && s1 < e2 then
            (* overlap: must be containment one way or the other *)
            Alcotest.(check bool) "events nest" true
              ((s1 <= s2 && e2 <= e1) || (s2 <= s1 && e1 <= e2)))
        intervals)
    intervals

let test_ir_size_deltas () =
  let spans, _ = trace_of_optimized_workload () in
  let pass_spans = List.filter (fun s -> s.Telemetry.kind = "pass") spans in
  List.iter
    (fun s ->
      match (s.Telemetry.ir_before, s.Telemetry.ir_after) with
      | Some b, Some a ->
        Alcotest.(check bool) "sizes positive" true
          (b.Telemetry.blocks > 0 && b.Telemetry.instrs > 0
          && a.Telemetry.blocks > 0 && a.Telemetry.instrs > 0)
      | _ -> Alcotest.failf "pass span %s lost its IR sizes" s.Telemetry.name)
    pass_spans;
  (* The whole distribution pipeline shrinks saxpy's instruction count. *)
  let total_delta =
    List.fold_left
      (fun acc s ->
        match (s.Telemetry.ir_before, s.Telemetry.ir_after) with
        | Some b, Some a -> acc + a.Telemetry.instrs - b.Telemetry.instrs
        | _ -> acc)
      0 pass_spans
  in
  Alcotest.(check bool) "pipeline net shrink recorded" true (total_delta < 0)

(* ------------------------------------------------------------------ *)
(* Counters registry                                                   *)

let test_counters_accumulate () =
  Metrics.reset_for_testing ();
  Metrics.add ~routine:"a" ~name:"widgets" 2;
  Metrics.add ~routine:"a" ~name:"widgets" 3;
  Metrics.incr ~routine:"b" ~name:"widgets";
  Metrics.add ~routine:"a" ~name:"gadgets" 1;
  Alcotest.(check int) "accumulates" 5 (Metrics.get ~routine:"a" ~name:"widgets");
  Alcotest.(check int) "separate routines" 1 (Metrics.get ~routine:"b" ~name:"widgets");
  Alcotest.(check int) "unknown is zero" 0 (Metrics.get ~routine:"c" ~name:"widgets");
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "entries" 3 (List.length snap);
  Alcotest.(check bool) "sorted by routine then name" true
    (List.map (fun e -> (e.Metrics.routine, e.Metrics.name)) snap
    = [ ("a", "gadgets"); ("a", "widgets"); ("b", "widgets") ]);
  Metrics.reset_for_testing ();
  Alcotest.(check int) "reset" 0 (List.length (Metrics.snapshot ()))

let test_pipeline_fills_registry () =
  Metrics.reset_for_testing ();
  let prog =
    Helpers.compile
      {|
fn f(x: int): int { return x * 4 + x * 4; }
fn main(): int { var a: int = f(3); var b: int = f(5); return a + b; }
|}
  in
  ignore (Epre.Pipeline.optimize ~level:Epre.Pipeline.Partial prog);
  let snap = Metrics.snapshot () in
  let routines_seen =
    List.sort_uniq compare (List.map (fun e -> e.Metrics.routine) snap)
  in
  Alcotest.(check (list string)) "counters for every routine" [ "f"; "main" ]
    routines_seen;
  List.iter
    (fun routine ->
      Alcotest.(check bool)
        (routine ^ " has pipeline counters")
        true
        (List.exists
           (fun e -> e.Metrics.routine = routine && e.Metrics.name = "dce.removed")
           snap))
    routines_seen;
  (* JSONL rendering: every line parses as a JSON object. *)
  String.split_on_char '\n' (Metrics.to_jsonl snap)
  |> List.iter (fun line ->
         match Tjson.parse line with
         | Ok (Tjson.Obj _) -> ()
         | Ok _ | Error _ -> Alcotest.failf "bad metrics JSONL line %S" line);
  Metrics.reset_for_testing ()

(* ------------------------------------------------------------------ *)
(* Harness timing and stats JSON                                       *)

let test_harness_wall_clock () =
  let prog = Helpers.compile "fn main(): int { return 2 + 3; }" in
  let spin = { Epre_harness.Harness.pass_name = "spin";
               run = (fun _ ->
                 (* Burn ~2ms of wall clock on the monotonic clock itself. *)
                 let t0 = Telemetry.Clock.now_ns () in
                 while Telemetry.Clock.elapsed_ms ~since:t0 < 2.0 do () done) }
  in
  let records =
    Epre_harness.Harness.supervise Epre_harness.Harness.default_config
      ~passes:[ spin ] prog
  in
  match records with
  | [ r ] ->
    Alcotest.(check bool) "duration is wall clock (>= 2ms)" true
      (r.Epre_harness.Harness.duration_ms >= 2.0);
    Alcotest.(check bool) "duration sane (< 5s)" true
      (r.Epre_harness.Harness.duration_ms < 5000.0)
  | rs -> Alcotest.failf "expected one record, got %d" (List.length rs)

let test_stats_jsonl () =
  let prog =
    Helpers.compile "fn main(): int { var i: int; var s: int; for i = 1 to 9 { s = s + i * 3; } return s; }"
  in
  let stats = Epre.Pipeline.optimize ~level:Epre.Pipeline.Distribution prog in
  let lines = String.split_on_char '\n' (Epre.Pipeline.stats_jsonl stats) in
  Alcotest.(check int) "one line per routine" (List.length stats) (List.length lines);
  List.iter
    (fun line ->
      match Tjson.parse line with
      | Ok (Tjson.Obj fields) ->
        Alcotest.(check bool) "typed record" true
          (List.assoc_opt "type" fields = Some (Tjson.Str "routine_stats"));
        Alcotest.(check bool) "has routine" true
          (List.mem_assoc "routine" fields);
        Alcotest.(check bool) "has gvn sub-object" true
          (match List.assoc_opt "gvn" fields with
          | Some (Tjson.Obj _) -> true
          | _ -> false)
      | Ok _ | Error _ -> Alcotest.failf "bad stats JSONL line %S" line)
    lines

(* ------------------------------------------------------------------ *)
(* Profile rendering                                                   *)

let test_profile_render () =
  let spans, _ = trace_of_optimized_workload () in
  let rows = Profile.rows spans in
  Alcotest.(check bool) "a row per distinct stage" true
    (List.length rows
    = List.length (List.sort_uniq compare distribution_stages));
  let shares = List.fold_left (fun acc r -> acc +. r.Profile.share) 0.0 rows in
  Alcotest.(check bool) "shares sum to ~100" true (Float.abs (shares -. 100.0) < 0.5);
  let sorted_desc =
    let totals = List.map (fun r -> r.Profile.total_ms) rows in
    totals = List.sort (fun a b -> compare b a) totals
  in
  Alcotest.(check bool) "sorted by total desc" true sorted_desc;
  let text = Profile.render spans in
  List.iter
    (fun stage ->
      Alcotest.(check bool) ("mentions " ^ stage) true
        (Helpers.contains_substring ~needle:stage text))
    distribution_stages;
  (* Profiling an empty recording stays graceful. *)
  Alcotest.(check bool) "empty profile is a diagnostic" true
    (Helpers.contains_substring ~needle:"no spans" (Profile.render []))

let suite =
  [
    Alcotest.test_case "tjson round-trip" `Quick test_tjson_roundtrip;
    Alcotest.test_case "tjson rejects malformed input" `Quick test_tjson_rejects;
    Alcotest.test_case "tjson unicode escapes" `Quick test_tjson_unicode;
    Alcotest.test_case "span nesting and caught exceptions" `Quick
      test_span_nesting_and_exceptions;
    Alcotest.test_case "escaping exception keeps balance" `Quick
      test_span_escaping_exception_balances;
    Alcotest.test_case "disabled spans are no-ops" `Quick test_disabled_is_noop;
    Alcotest.test_case "chrome trace is well-formed" `Quick
      test_chrome_trace_wellformed;
    Alcotest.test_case "spans carry IR size deltas" `Quick test_ir_size_deltas;
    Alcotest.test_case "counters accumulate across routines" `Quick
      test_counters_accumulate;
    Alcotest.test_case "pipeline fills the counters registry" `Quick
      test_pipeline_fills_registry;
    Alcotest.test_case "harness durations are wall clock" `Quick
      test_harness_wall_clock;
    Alcotest.test_case "routine stats export as JSONL" `Quick test_stats_jsonl;
    Alcotest.test_case "profile summary renders" `Quick test_profile_render;
  ]
