(** Property tests for reassociation's canonical-form claim on
    generator-produced programs (semantics preservation lives in
    [Test_random_programs]; tree-level normalization laws in
    [Test_expr_tree_props]). After [Reassociate.run], every reassociable
    expression chain in the emitted three-address code must be

    - {b left-associated}: the lowering folds each rank-sorted n-ary
      node left to right, so an intermediate of an associative chain is
      consumed as the {e left} operand of the next operation — a
      single-use same-operator temporary in the right slot would mean a
      right-nested chain survived;
    - {b rank-sorted with constants first}: constants rank 0 and every
      anchor ranks ≥ 1, so a chain that mixes a constant with non-constant
      operands must lower the constant as its first leaf — never as the
      right operand against a non-constant left;
    - {b stable} under re-running: the pass's one intentional cost is
      the code growth of forward propagation (Table 2), and on its own
      output there is nothing left to propagate — a second run must not
      grow the operation count, and the form must stay canonical. (An
      exact fixpoint is not promised: the SSA round trip may split edges
      and place phi copies differently, occasionally letting a rerun
      shave an operation.) *)

open Epre_ir
open QCheck2
module Reassociate = Epre_reassoc.Reassociate
module Expr_tree = Epre_reassoc.Expr_tree

let gen_seed = Gen.int_range 0 1_000_000_000

let compile seed =
  Epre_frontend.Frontend.compile_string (Epre_fuzz.Gen.source seed)

let reassociate ~config prog =
  List.iter
    (fun r -> ignore (Reassociate.run ~config r))
    (Program.routines prog);
  prog

(* Single-definition and use-count tables over a routine's instructions
   (terminator uses included; a register defined twice maps to [None]). *)
let tables (r : Routine.t) =
  let defs : (Instr.reg, Instr.t option) Hashtbl.t = Hashtbl.create 64 in
  let uses : (Instr.reg, int) Hashtbl.t = Hashtbl.create 64 in
  let count u =
    Hashtbl.replace uses u
      (1 + Option.value ~default:0 (Hashtbl.find_opt uses u))
  in
  Cfg.iter_blocks
    (fun b ->
      List.iter
        (fun i ->
          (match Instr.def i with
          | Some d ->
            Hashtbl.replace defs d
              (if Hashtbl.mem defs d then None else Some i)
          | None -> ());
          List.iter count (Instr.uses i))
        b.Block.instrs;
      List.iter count (Instr.term_uses b.Block.term))
    r.Routine.cfg;
  let single_def reg =
    match Hashtbl.find_opt defs reg with Some (Some i) -> Some i | _ -> None
  in
  let use_count reg = Option.value ~default:0 (Hashtbl.find_opt uses reg) in
  (single_def, use_count)

(* Scan a reassociated routine for canonical-form violations; returns
   the first offending instruction's rendering, [None] when clean.

   A chain is an associative operation plus the single-use same-operator
   intermediates feeding its left slot; its leaves, read left to right,
   are the rank-sorted operand order the lowering emitted. Rank 0 is the
   only rank observable after the pass (registers whose value is a pure
   function of constants — [Rank] gives constants 0 and propagates
   through unary/copy/binary), so the sortedness check is: rank-0
   leaves form a prefix of every chain. *)
let canonical_violation ~config (r : Routine.t) =
  let single_def, use_count = tables r in
  (* Transitive rank-0 test, memoized; cycles (loop-carried single defs)
     settle to false via the visiting mark. Copies are deliberately not
     followed: the lowering emits none, so a copy is phi glue — its
     source ranked by its defining block at sort time even when the
     value traces to a constant. *)
  let memo : (Instr.reg, bool) Hashtbl.t = Hashtbl.create 64 in
  let rec rank0 reg =
    match Hashtbl.find_opt memo reg with
    | Some v -> v
    | None ->
      Hashtbl.replace memo reg false;
      let v =
        match single_def reg with
        | Some (Instr.Const _) -> true
        | Some (Instr.Unop { src; _ }) -> rank0 src
        | Some (Instr.Binop { a; b; _ }) -> rank0 a && rank0 b
        | _ -> false
      in
      Hashtbl.replace memo reg v;
      v
  in
  (* Leaves of the chain rooted at a same-[op] binop, left to right,
     expanding only the left slot (the right slot must be a leaf — that
     is the left-association check). *)
  let rec chain_leaves op (a, b) =
    let left =
      match single_def a with
      | Some (Instr.Binop { op = op'; a = a'; b = b'; _ })
        when op' = op && use_count a = 1 ->
        chain_leaves op (a', b')
      | _ -> [ a ]
    in
    left @ [ b ]
  in
  let rank0_prefix leaves =
    let rec go seen_high = function
      | [] -> true
      | l :: rest ->
        if rank0 l then (not seen_high) && go seen_high rest
        else go true rest
    in
    go false leaves
  in
  let violation = ref None in
  let offend i why =
    if !violation = None then
      violation := Some (Printf.sprintf "%s (%s)" (Pp.instr_to_string i) why)
  in
  Cfg.iter_blocks
    (fun blk ->
      List.iter
        (fun i ->
          match i with
          | Instr.Binop { op; a; b; _ } when Expr_tree.reassociable config op
            ->
            (match single_def b with
            | Some (Instr.Binop { op = op'; _ })
              when op' = op && use_count b = 1 ->
              offend i "right-nested associative chain"
            | _ -> ());
            if not (rank0_prefix (chain_leaves op (a, b))) then
              offend i "rank-0 operand sorted after a higher-ranked one"
          | _ -> ())
        blk.Block.instrs)
    r.Routine.cfg;
  !violation

let canonical_after_run ~config label =
  Helpers.qcheck_case ~count:100 "reassociation" label gen_seed (fun seed ->
      let prog = reassociate ~config (compile seed) in
      List.for_all
        (fun r ->
          match canonical_violation ~config r with
          | None -> true
          | Some what ->
            Test.fail_reportf "%s: not canonical: %s" r.Routine.name what)
        (Program.routines prog))

let stable_under_rerun ~config label =
  Helpers.qcheck_case ~count:60 "reassociation" label gen_seed (fun seed ->
      let prog = reassociate ~config (compile seed) in
      List.for_all
        (fun r ->
          let again = Reassociate.run ~config r in
          if again.Reassociate.after_ops > again.Reassociate.before_ops then
            Test.fail_reportf
              "%s: second run grew the operation count %d -> %d"
              r.Routine.name again.Reassociate.before_ops
              again.Reassociate.after_ops
          else
            match canonical_violation ~config r with
            | None -> true
            | Some what ->
              Test.fail_reportf "%s: second run broke canonical form: %s"
                r.Routine.name what)
        (Program.routines prog))

let cfg_plain = Epre.Pipeline.reassoc_config ~distribute:false

let cfg_dist = Epre.Pipeline.reassoc_config ~distribute:true

let suite =
  [
    canonical_after_run ~config:cfg_plain
      "chains left-associated and rank-sorted";
    canonical_after_run ~config:cfg_dist
      "canonical under distribution too";
    stable_under_rerun ~config:cfg_plain
      "second run does not grow the code";
  ]
