(** Differential testing on randomly generated programs.

    The programs come from the fuzz subsystem's seeded generator
    ([Epre_fuzz.Gen] — float scalars and arrays, a 2-D array, helper
    routine calls, [while] and [downto]/[step] loops, guarded division
    and subscripts); QCheck supplies the seeds, so a failure prints the
    one integer that reproduces it (`eprec fuzz` replays it). Every
    optimization level and every individual pass must preserve the
    program's return value and [emit] trace — up to the harness's
    float-reassociation tolerance, since the generated programs exercise
    floating point. This is the heavy artillery that guards the whole
    pipeline (SSA round trips, PRE insertions, GVN renaming,
    reassociation, coalescing) against miscompilation. *)

open QCheck2

let gen_seed = Gen.int_range 0 1_000_000_000

let compile seed =
  Epre_frontend.Frontend.compile_string (Epre_fuzz.Gen.source seed)

let fuel = 4_000_000

let observe prog = Epre_harness.Harness.observe ~fuel prog

let level_preserves level =
  Helpers.qcheck_case ~count:100 "random programs"
    (Epre.Pipeline.level_to_string level ^ " preserves behaviour")
    gen_seed
    (fun seed ->
      let prog = compile seed in
      let reference = observe prog in
      let optimized, _ = Epre.Pipeline.optimized_copy ~level prog in
      Epre_harness.Harness.obs_equal reference (observe optimized))

let pass_preserves name pass =
  Helpers.qcheck_case ~count:100 "random programs" (name ^ " preserves behaviour")
    gen_seed
    (fun seed ->
      let prog = compile seed in
      let reference = observe prog in
      let p = Epre_ir.Program.copy prog in
      List.iter (fun r -> pass r) (Epre_ir.Program.routines p);
      Epre_harness.Harness.obs_equal reference (observe p))

let suite =
  [
    pass_preserves "ssa round trip" (fun r ->
        ignore (Epre_ssa.Ssa.destroy (Epre_ssa.Ssa.build r)));
    pass_preserves "sccp" (fun r -> ignore (Epre_opt.Constprop.run r));
    pass_preserves "peephole" (fun r ->
        ignore (Epre_opt.Peephole.run ~config:{ Epre_opt.Peephole.mul_to_shift = true } r));
    pass_preserves "dce+coalesce+clean" (fun r ->
        ignore (Epre_opt.Dce.run r);
        ignore (Epre_opt.Coalesce.run r);
        ignore (Epre_opt.Clean.run r));
    pass_preserves "naming+pre" (fun r ->
        ignore (Epre_opt.Naming.run r);
        ignore (Epre_pre.Pre.run r));
    pass_preserves "cse_dom" (fun r -> ignore (Epre_opt.Cse_dom.run r));
    pass_preserves "dvnt" (fun r -> ignore (Epre_opt.Dvnt.run r));
    pass_preserves "adce+clean" (fun r ->
        ignore (Epre_opt.Adce.run r);
        ignore (Epre_opt.Clean.run r));
    pass_preserves "strength" (fun r -> ignore (Epre_opt.Strength.run r));
    pass_preserves "pre_classic" (fun r ->
        ignore (Epre_opt.Naming.run r);
        ignore (Epre_pre.Pre_classic.run r));
    pass_preserves "naming+cse_avail" (fun r ->
        ignore (Epre_opt.Naming.run r);
        ignore (Epre_opt.Cse_avail.run r));
    pass_preserves "reassociate+distribute" (fun r ->
        ignore
          (Epre_reassoc.Reassociate.run
             ~config:{ Epre_reassoc.Expr_tree.reassoc_float = true; distribute = true }
             r));
    pass_preserves "gvn" (fun r -> ignore (Epre_gvn.Gvn.run r));
    level_preserves Epre.Pipeline.Baseline;
    level_preserves Epre.Pipeline.Partial;
    level_preserves Epre.Pipeline.Reassociation;
    level_preserves Epre.Pipeline.Distribution;
  ]
