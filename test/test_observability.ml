(* The observability stack: histogram bucketing and merge determinism,
   the structured log's sinks and filtering, the flight recorder's ring
   and dump-on-failure protocol, the Prometheus-style exposition, and —
   the invariant everything else leans on — that none of it perturbs
   serve results. *)

module Hist = Epre_telemetry.Histogram
module Log = Epre_telemetry.Log
module Recorder = Epre_telemetry.Recorder
module Exposition = Epre_telemetry.Exposition
module Metrics = Epre_telemetry.Metrics
module Tjson = Epre_telemetry.Tjson
module Service = Epre_service.Service
module Pool = Epre_service.Pool
module Chaos = Epre_harness.Chaos
module Pipeline = Epre.Pipeline

let temp_dir tag =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "eprec-obs-%s-%d" tag (Unix.getpid ()))
  in
  let rec rm p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun f -> rm (Filename.concat p f)) (Sys.readdir p);
        Sys.rmdir p
      end
      else Sys.remove p
  in
  rm d;
  Sys.mkdir d 0o755;
  d

(* ------------------------------------------------------------------ *)
(* Histogram: bucket scheme *)

let test_bucket_boundaries () =
  (* Probe values: the exact unit range, every power of two and its
     neighbours, and a deterministic pseudo-random spread. *)
  let probes = ref [] in
  for v = 0 to 64 do probes := v :: !probes done;
  for p = 3 to 61 do
    let b = 1 lsl p in
    probes := (b - 1) :: b :: (b + 1) :: !probes
  done;
  let st = ref 987654321 in
  for _ = 1 to 2000 do
    st := ((!st * 1103515245) + 12345) land max_int;
    probes := !st mod 1_000_000_000_000 :: !probes
  done;
  List.iter
    (fun v ->
      let i = Hist.bucket_of_value v in
      Alcotest.(check bool)
        (Printf.sprintf "index of %d in range" v)
        true
        (i >= 0 && i < Hist.num_buckets);
      let lo, hi = Hist.bucket_bounds i in
      if v < lo || v > hi then
        Alcotest.failf "value %d outside its bucket %d: [%d, %d]" v i lo hi;
      (* Relative error bound: bucket width <= 1/8 of its lower bound
         (unit buckets below 8). *)
      let width = hi - lo + 1 in
      if width > max 1 (lo / 8) then
        Alcotest.failf "bucket %d too wide: [%d, %d] width %d" i lo hi width)
    !probes;
  (* Monotone and gap-free: bucket i+1 starts right after bucket i
     ends. *)
  for i = 0 to Hist.num_buckets - 2 do
    let _, hi = Hist.bucket_bounds i in
    let lo', _ = Hist.bucket_bounds (i + 1) in
    Alcotest.(check int) (Printf.sprintf "bucket %d contiguous" i) (hi + 1) lo'
  done;
  (* Negatives clamp to bucket 0. *)
  Alcotest.(check int) "negative clamps" 0 (Hist.bucket_of_value (-17))

let test_merge_deterministic () =
  (* Four domains each record a known arithmetic progression into one
     histogram; the merged view must equal the serial single-domain
     recording of the same multiset, whatever the interleaving. *)
  let concurrent = Hist.create () in
  let values_of k = List.init 500 (fun i -> (i * 7) + (k * 131) + 1) in
  let domains =
    List.init 4 (fun k ->
        Domain.spawn (fun () ->
            List.iter (Hist.record concurrent) (values_of k)))
  in
  List.iter Domain.join domains;
  let serial = Hist.create () in
  List.iter (fun k -> List.iter (Hist.record serial) (values_of k))
    [ 0; 1; 2; 3 ];
  let mc = Hist.merged concurrent and ms = Hist.merged serial in
  Alcotest.(check int) "count" ms.Hist.count mc.Hist.count;
  Alcotest.(check int) "sum" ms.Hist.sum mc.Hist.sum;
  Alcotest.(check int) "max" ms.Hist.max_value mc.Hist.max_value;
  Alcotest.(check bool) "bucket counts" true (ms.Hist.counts = mc.Hist.counts);
  List.iter
    (fun q ->
      Alcotest.(check int)
        (Printf.sprintf "q%.2f" q)
        (Hist.quantile ms q) (Hist.quantile mc q))
    [ 0.5; 0.9; 0.99; 1.0 ]

let test_quantile_accuracy () =
  (* Histogram quantiles land within one log-scale bucket (12.5%) of the
     exact order statistic, for a skewed sample. *)
  let st = ref 4242 in
  let sample =
    List.init 4096 (fun _ ->
        st := ((!st * 1103515245) + 12345) land max_int;
        (!st mod 997 * (!st mod 89)) + 1)
  in
  let h = Hist.create () in
  List.iter (Hist.record h) sample;
  let m = Hist.merged h in
  let sorted = Array.of_list (List.map float_of_int sample) in
  Array.sort compare sorted;
  List.iter
    (fun q ->
      let exact = Hist.percentile_of_sorted sorted q in
      let approx = float_of_int (Hist.quantile m q) in
      (* Upper bucket edge: never below the exact statistic, within
         12.5% above it. *)
      if approx < exact || approx > exact *. 1.125 +. 1.0 then
        Alcotest.failf "q%.2f: exact %.0f, histogram %.0f" q exact approx)
    [ 0.5; 0.9; 0.99 ];
  Alcotest.(check int) "q1 is the exact max" m.Hist.max_value
    (Hist.quantile m 1.0)

(* ------------------------------------------------------------------ *)
(* Flight recorder *)

let test_ring_wraparound () =
  let dir = temp_dir "ring" in
  Recorder.configure ~capacity:8 ~dir ();
  Fun.protect ~finally:Recorder.disable @@ fun () ->
  for i = 1 to 20 do
    Recorder.note ~fields:[ ("i", Tjson.Int i) ] "obs.tick"
  done;
  let entries = Recorder.snapshot () in
  Alcotest.(check int) "capacity bounds the ring" 8 (List.length entries);
  let seqs =
    List.map
      (fun (e : Recorder.entry) ->
        match List.assoc "i" e.Recorder.fields with
        | Tjson.Int i -> i
        | _ -> -1)
      entries
  in
  (* The survivors are exactly the last 8 notes, in order. *)
  Alcotest.(check (list int)) "last events, oldest first"
    [ 13; 14; 15; 16; 17; 18; 19; 20 ]
    seqs

let test_disabled_recorder_is_noop () =
  Recorder.disable ();
  Recorder.note "obs.ignored";
  Alcotest.(check (list reject)) "empty snapshot" [] (Recorder.snapshot ());
  Alcotest.(check bool) "dump refuses" true
    (Recorder.dump ~reason:"nothing" () = None)

(* A job id the given fault deterministically strikes (or spares). *)
let chaos_id fault ~firing =
  let rec find i =
    let id = Printf.sprintf "job-%d" i in
    if Chaos.fires fault ~key:id = firing then id
    else if i > 10_000 then Alcotest.fail "no id found"
    else find (i + 1)
  in
  find 1

let saxpy_iloc =
  lazy
    (Epre_ir.Ir_text.print_program
       (Epre_workloads.Workloads.compile
          (Option.get (Epre_workloads.Workloads.find "saxpy"))))

let iloc_job id =
  { Service.id; level = Pipeline.Partial;
    input = Service.Iloc (Lazy.force saxpy_iloc); emit = true }

let test_dump_on_worker_raise () =
  let dir = temp_dir "dump" in
  Recorder.configure ~dir ();
  Fun.protect ~finally:Recorder.disable @@ fun () ->
  let id = chaos_id Chaos.Worker_raise ~firing:true in
  let r = Service.run_job ~chaos:[ Chaos.Worker_raise ] (iloc_job id) in
  Alcotest.(check bool) "job failed" false r.Service.ok;
  let path = Filename.concat dir (Printf.sprintf "flightrec-%d.json" (Unix.getpid ())) in
  Alcotest.(check bool) "dump written" true (Sys.file_exists path);
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Tjson.parse text with
  | Error m -> Alcotest.failf "dump does not parse: %s" m
  | Ok j ->
    let str f =
      match Tjson.member f j with Some (Tjson.Str s) -> Some s | _ -> None
    in
    Alcotest.(check (option string))
      "schema" (Some "epre/flightrec/v1") (str "schema");
    Alcotest.(check (option string)) "corr is the failing job" (Some id)
      (str "corr");
    let events =
      match Tjson.member "events" j with Some (Tjson.Arr es) -> es | _ -> []
    in
    Alcotest.(check bool) "events present" true (events <> []);
    (* The ring captured events of the failing job's extent, tagged with
       its correlation id. *)
    Alcotest.(check bool) "some event carries the corr id" true
      (List.exists
         (fun e -> Tjson.member "corr" e = Some (Tjson.Str id))
         events)

let test_with_corr_restores () =
  Alcotest.(check (option string)) "no ambient corr" None (Recorder.corr ());
  let inner =
    Recorder.with_corr "j-outer" (fun () ->
        Recorder.with_corr "j-inner" (fun () -> Recorder.corr ()))
  in
  Alcotest.(check (option string)) "nested corr" (Some "j-inner") inner;
  Alcotest.(check (option string)) "restored" None (Recorder.corr ())

(* ------------------------------------------------------------------ *)
(* Structured log *)

let test_log_level_filtering () =
  let buf = ref [] in
  Log.set_text_sink (fun line -> buf := line :: !buf);
  Log.set_stderr_level (Some Log.Warn);
  let restore () =
    Log.set_stderr_level None;
    Log.set_text_sink prerr_endline
  in
  Fun.protect ~finally:restore @@ fun () ->
  Log.debug ~event:"obs.a" "dropped";
  Log.info ~event:"obs.b" "dropped";
  Log.warn ~event:"obs.c" "kept";
  Log.error ~event:"obs.d" ~corr:"j9" ~fields:[ ("k", Tjson.Int 7) ] "kept";
  let lines = List.rev !buf in
  Alcotest.(check int) "only warn and above" 2 (List.length lines);
  let has needle line =
    let rec scan i =
      i + String.length needle <= String.length line
      && (String.sub line i (String.length needle) = needle || scan (i + 1))
    in
    scan 0
  in
  Alcotest.(check bool) "warn line" true (has "obs.c" (List.nth lines 0));
  let err = List.nth lines 1 in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("error line has " ^ needle) true (has needle err))
    [ "obs.d"; "j9"; "k=7"; "error" ]

let test_log_jsonl_sink () =
  let path = Filename.temp_file "eprec-obs" ".jsonl" in
  Log.open_file path;
  Log.info ~event:"obs.one" ~corr:"j1" "first";
  Log.debug ~event:"obs.two" ~fields:[ ("n", Tjson.Int 3) ] "second";
  Log.close_file ();
  let ic = open_in_bin path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in_noerr ic);
  Sys.remove path;
  let lines = List.rev !lines in
  (* Every level reaches the file sink, each line a JSON object with the
     event schema. *)
  Alcotest.(check int) "two lines" 2 (List.length lines);
  List.iter2
    (fun line (event, level) ->
      match Tjson.parse line with
      | Error m -> Alcotest.failf "bad JSONL line %S: %s" line m
      | Ok j ->
        let str f =
          match Tjson.member f j with Some (Tjson.Str s) -> Some s | _ -> None
        in
        Alcotest.(check (option string)) "event" (Some event) (str "event");
        Alcotest.(check (option string)) "level" (Some level) (str "level");
        Alcotest.(check bool) "ts_ns present" true
          (match Tjson.member "ts_ns" j with
          | Some (Tjson.Int _) -> true
          | _ -> false))
    lines
    [ ("obs.one", "info"); ("obs.two", "debug") ]

let test_log_rate_limit () =
  Metrics.reset_for_testing ();
  let buf = ref 0 in
  Log.set_text_sink (fun _ -> incr buf);
  Log.set_stderr_level (Some Log.Warn);
  let restore () =
    Log.set_stderr_level None;
    Log.set_text_sink prerr_endline
  in
  Fun.protect ~finally:restore @@ fun () ->
  for _ = 1 to 200 do
    Log.warn ~event:"obs.flood" "again"
  done;
  Alcotest.(check int) "sink capped at 50 per window" 50 !buf;
  Alcotest.(check int) "overflow counted" 150
    (Metrics.get ~routine:"<service>" ~name:"log.suppressed")

(* ------------------------------------------------------------------ *)
(* Exposition *)

let test_exposition_roundtrip () =
  Metrics.reset_for_testing ();
  Metrics.add ~routine:"<service>" ~name:"serve.ok" 42;
  List.iter (Hist.observe ~name:"obs.lat") [ 100; 200; 300; 400; 1000 ];
  let text = Exposition.render () in
  match Exposition.parse text with
  | Error m -> Alcotest.failf "exposition does not parse back: %s" m
  | Ok samples ->
    let find metric labels =
      List.find_opt
        (fun (s : Exposition.sample) ->
          s.Exposition.metric = metric
          && List.for_all
               (fun (k, v) -> List.assoc_opt k s.Exposition.labels = Some v)
               labels)
        samples
    in
    (match find "epre_counter" [ ("routine", "<service>"); ("name", "serve.ok") ] with
    | Some s -> Alcotest.(check (float 0.0)) "counter value" 42.0 s.Exposition.value
    | None -> Alcotest.fail "counter sample missing");
    (match find "epre_hist_ns_count" [ ("name", "obs.lat") ] with
    | Some s -> Alcotest.(check (float 0.0)) "hist count" 5.0 s.Exposition.value
    | None -> Alcotest.fail "histogram count sample missing");
    (match find "epre_hist_ns_max" [ ("name", "obs.lat") ] with
    | Some s -> Alcotest.(check (float 0.0)) "hist max" 1000.0 s.Exposition.value
    | None -> Alcotest.fail "histogram max sample missing");
    (* Quantile samples agree with the histogram registry itself. *)
    let m = Hist.merged (Hist.handle ~name:"obs.lat") in
    List.iter
      (fun (qs, q) ->
        match find "epre_hist_ns" [ ("name", "obs.lat"); ("quantile", qs) ] with
        | Some s ->
          Alcotest.(check (float 0.0))
            ("quantile " ^ qs)
            (float_of_int (Hist.quantile m q))
            s.Exposition.value
        | None -> Alcotest.fail ("quantile sample missing: " ^ qs))
      [ ("0.5", 0.5); ("0.9", 0.9); ("0.99", 0.99) ];
    (* Label escaping survives the round trip. *)
    Metrics.reset_for_testing ();
    Metrics.incr ~routine:"a\"b\\c" ~name:"weird\nname";
    (match Exposition.parse (Exposition.render ()) with
    | Error m -> Alcotest.failf "escaped exposition does not parse: %s" m
    | Ok samples ->
      Alcotest.(check bool) "escaped labels round-trip" true
        (List.exists
           (fun (s : Exposition.sample) ->
             List.assoc_opt "routine" s.Exposition.labels = Some "a\"b\\c"
             && List.assoc_opt "name" s.Exposition.labels = Some "weird\nname")
           samples));
    Metrics.reset_for_testing ()

(* ------------------------------------------------------------------ *)
(* Serve integration *)

let serve_batch ?chaos ?(jobs = 8) () =
  let lines =
    List.init jobs (fun i ->
        Tjson.to_string
          (Tjson.Obj
             [ ("id", Tjson.Str (Printf.sprintf "job-%d" (i + 1)));
               ("level", Tjson.Str "partial");
               ("iloc", Tjson.Str (Lazy.force saxpy_iloc)) ]))
  in
  let in_path = Filename.temp_file "eprec-obs" ".jobs" in
  let out_path = Filename.temp_file "eprec-obs" ".out" in
  let oc = open_out_bin in_path in
  List.iter (fun l -> output_string oc l; output_char oc '\n') lines;
  close_out oc;
  let ic = open_in_bin in_path and out = open_out_bin out_path in
  let summary =
    Pool.with_pool ~jobs:2 (fun pool ->
        Service.serve ?chaos
          ~policy:{ Service.Policy.default with retries = 1; backoff_ms = 1.0 }
          ~pool ~input:ic ~output:out ())
  in
  close_in_noerr ic;
  close_out_noerr out;
  let ic = open_in_bin out_path in
  let results = ref [] in
  (try
     while true do
       results := input_line ic :: !results
     done
   with End_of_file -> close_in_noerr ic);
  Sys.remove in_path;
  Sys.remove out_path;
  (summary, List.rev !results)

let test_serve_events_carry_corr () =
  let path = Filename.temp_file "eprec-obs" ".jsonl" in
  Log.open_file path;
  let _, _ =
    serve_batch ~chaos:[ Chaos.Worker_raise ] ()
  in
  Log.close_file ();
  let ic = open_in_bin path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in_noerr ic);
  Sys.remove path;
  let serve_events =
    List.filter_map
      (fun line ->
        match Tjson.parse line with
        | Error _ -> None
        | Ok j -> (
          match Tjson.member "event" j with
          | Some (Tjson.Str e)
            when String.length e >= 6 && String.sub e 0 6 = "serve." ->
            Some (e, Tjson.member "corr" j)
          | _ -> None))
      (List.rev !lines)
  in
  Alcotest.(check bool) "serve events were logged" true (serve_events <> []);
  List.iter
    (fun (e, corr) ->
      match corr with
      | Some (Tjson.Str id)
        when String.length id > 4 && String.sub id 0 4 = "job-" ->
        ()
      | _ -> Alcotest.failf "serve event %S lacks a job correlation id" e)
    serve_events

let test_serve_byte_identity_with_sinks () =
  (* The acceptance invariant: the result stream is identical whether
     every sink is enabled or all observability is off. latency_ms is
     wall-clock noise, so compare the deterministic view. *)
  let view lines =
    List.map
      (fun line ->
        match Tjson.parse line with
        | Error m -> Alcotest.failf "bad result line: %s" m
        | Ok j ->
          List.map (fun f -> (f, Tjson.member f j))
            [ "id"; "ok"; "outcome"; "attempts"; "hits"; "misses"; "iloc" ])
      lines
  in
  let _, bare = serve_batch ~chaos:[ Chaos.Worker_raise ] () in
  let dir = temp_dir "identity" in
  let log_path = Filename.temp_file "eprec-obs" ".jsonl" in
  let metrics_path = Filename.temp_file "eprec-obs" ".prom" in
  Recorder.configure ~dir ();
  Log.open_file log_path;
  let observed =
    Fun.protect
      ~finally:(fun () ->
        Log.close_file ();
        Recorder.disable ())
      (fun () -> snd (serve_batch ~chaos:[ Chaos.Worker_raise ] ()))
  in
  Epre_telemetry.Exposition.write ~path:metrics_path;
  Sys.remove log_path;
  Sys.remove metrics_path;
  Alcotest.(check bool) "same job count" true
    (List.length bare = List.length observed);
  Alcotest.(check bool) "deterministic view identical" true
    (view bare = view observed)

let test_serve_stats_line () =
  let stats_lines = ref [] in
  let lines =
    List.init 6 (fun i ->
        Tjson.to_string
          (Tjson.Obj
             [ ("id", Tjson.Str (Printf.sprintf "job-%d" (i + 1)));
               ("iloc", Tjson.Str (Lazy.force saxpy_iloc)) ]))
  in
  let in_path = Filename.temp_file "eprec-obs" ".jobs" in
  let oc = open_out_bin in_path in
  List.iter (fun l -> output_string oc l; output_char oc '\n') lines;
  close_out oc;
  let metrics_path = Filename.temp_file "eprec-obs" ".prom" in
  let ic = open_in_bin in_path in
  let out = open_out_bin (Filename.concat (Filename.get_temp_dir_name ()) "eprec-obs-stats.out") in
  let summary =
    Pool.with_pool ~jobs:2 (fun pool ->
        Service.serve ~stats_every:2 ~metrics_out:metrics_path
          ~stats_sink:(fun l -> stats_lines := l :: !stats_lines)
          ~pool ~input:ic ~output:out ())
  in
  close_in_noerr ic;
  close_out_noerr out;
  Sys.remove in_path;
  Alcotest.(check int) "all jobs served" 6 summary.Service.jobs;
  Alcotest.(check bool) "stats lines emitted" true (!stats_lines <> []);
  List.iter
    (fun line ->
      Alcotest.(check bool) "stats line shape" true
        (String.length line > 6 && String.sub line 0 6 = "stats:"))
    !stats_lines;
  (* The exposition landed and parses. *)
  let ic = open_in_bin metrics_path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Sys.remove metrics_path;
  (match Exposition.parse text with
  | Error m -> Alcotest.failf "metrics-out does not parse: %s" m
  | Ok samples ->
    Alcotest.(check bool) "serve.job histogram exposed" true
      (List.exists
         (fun (s : Exposition.sample) ->
           s.Exposition.metric = "epre_hist_ns"
           && List.assoc_opt "name" s.Exposition.labels = Some "serve.job")
         samples))

let suite =
  [ Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
    Alcotest.test_case "multi-domain merge is deterministic" `Quick
      test_merge_deterministic;
    Alcotest.test_case "quantiles within bucket resolution" `Quick
      test_quantile_accuracy;
    Alcotest.test_case "ring wraparound keeps the newest" `Quick
      test_ring_wraparound;
    Alcotest.test_case "disabled recorder is a no-op" `Quick
      test_disabled_recorder_is_noop;
    Alcotest.test_case "dump on chaos:worker-raise carries the corr id"
      `Quick test_dump_on_worker_raise;
    Alcotest.test_case "with_corr nests and restores" `Quick
      test_with_corr_restores;
    Alcotest.test_case "stderr level filtering" `Quick test_log_level_filtering;
    Alcotest.test_case "JSONL sink records every level" `Quick
      test_log_jsonl_sink;
    Alcotest.test_case "warn flood is rate-limited" `Quick test_log_rate_limit;
    Alcotest.test_case "exposition round-trips" `Quick test_exposition_roundtrip;
    Alcotest.test_case "serve events carry correlation ids" `Quick
      test_serve_events_carry_corr;
    Alcotest.test_case "results identical with sinks on" `Quick
      test_serve_byte_identity_with_sinks;
    Alcotest.test_case "stats line and metrics-out" `Quick
      test_serve_stats_line ]
