(** Diagnostics of the IR validators, [Routine.validate] and
    [Epre_ssa.Ssa_check] — the harness's [Ir] tier. Each test hand-builds
    an ill-formed routine exercising one diagnostic class and asserts the
    error message names the offending block or instruction. *)

open Epre_ir

let expect_ill_formed ~what ~mentions f =
  match f () with
  | () -> Alcotest.failf "%s: expected Routine.Ill_formed" what
  | exception Routine.Ill_formed msg ->
    List.iter
      (fun needle ->
        if not (Helpers.contains_substring ~needle msg) then
          Alcotest.failf "%s: diagnostic %S does not mention %S" what msg needle)
      mentions

let expect_not_ssa ~what ~mentions f =
  match f () with
  | () -> Alcotest.failf "%s: expected Ssa_check.Not_ssa" what
  | exception Epre_ssa.Ssa_check.Not_ssa msg ->
    List.iter
      (fun needle ->
        if not (Helpers.contains_substring ~needle msg) then
          Alcotest.failf "%s: diagnostic %S does not mention %S" what msg needle)
      mentions

(* --- Routine.validate: structural classes ----------------------------- *)

let test_dangling_edge () =
  let b = Builder.start ~name:"f" ~nparams:0 in
  Builder.set_term b (Instr.Jump 99);
  expect_ill_formed ~what:"dangling edge" ~mentions:[ "block 0"; "missing block 99" ]
    (fun () -> Routine.validate b.Builder.routine)

let test_phi_preds_mismatch () =
  (* A two-block routine whose join has a phi naming a non-predecessor. *)
  let b = Builder.start ~name:"f" ~nparams:1 in
  let join = Builder.new_block b in
  Builder.jump b join;
  Builder.switch b join;
  let d = Builder.fresh_reg b in
  Block.prepend
    (Cfg.block (Builder.cfg b) join)
    (Instr.Phi { dst = d; args = [ (join, 0) ] });
  Builder.ret b (Some d);
  expect_ill_formed ~what:"phi preds mismatch"
    ~mentions:[ Printf.sprintf "block %d" join; "phi preds" ]
    (fun () -> Routine.validate b.Builder.routine)

let test_phi_arity_mismatch () =
  (* A phi in a two-predecessor join carrying only one argument. *)
  let b = Builder.start ~name:"f" ~nparams:1 in
  let left = Builder.new_block b in
  let right = Builder.new_block b in
  let join = Builder.new_block b in
  Builder.cbr b ~cond:0 ~ifso:left ~ifnot:right;
  Builder.switch b left;
  Builder.jump b join;
  Builder.switch b right;
  Builder.jump b join;
  Builder.switch b join;
  let d = Builder.fresh_reg b in
  Block.prepend
    (Cfg.block (Builder.cfg b) join)
    (Instr.Phi { dst = d; args = [ (left, 0) ] });
  Builder.ret b (Some d);
  expect_ill_formed ~what:"phi arity mismatch"
    ~mentions:[ Printf.sprintf "block %d" join; "phi preds" ]
    (fun () -> Routine.validate b.Builder.routine)

let test_phi_after_non_phi () =
  let b = Builder.start ~name:"f" ~nparams:1 in
  let next = Builder.new_block b in
  Builder.jump b next;
  Builder.switch b next;
  let x = Builder.int b 7 in
  let blk = Cfg.block (Builder.cfg b) next in
  blk.Block.instrs <-
    blk.Block.instrs @ [ Instr.Phi { dst = Builder.fresh_reg b; args = [ (0, x) ] } ];
  Builder.ret b (Some x);
  expect_ill_formed ~what:"phi after non-phi"
    ~mentions:[ Printf.sprintf "block %d" next; "phi after non-phi" ]
    (fun () -> Routine.validate b.Builder.routine)

let test_use_out_of_range () =
  let b = Builder.start ~name:"f" ~nparams:1 in
  let d = Builder.fresh_reg b in
  Builder.emit b (Instr.Binop { op = Op.Add; dst = d; a = 0; b = 55 });
  Builder.ret b (Some d);
  expect_ill_formed ~what:"use out of range"
    ~mentions:[ "block 0"; "r55"; "out of range" ]
    (fun () -> Routine.validate b.Builder.routine)

(* --- Ssa_check: dominance-aware classes ------------------------------- *)

let test_duplicate_definition () =
  let b = Builder.start ~name:"f" ~nparams:2 in
  let d = Builder.fresh_reg b in
  Builder.emit b (Instr.Binop { op = Op.Add; dst = d; a = 0; b = 1 });
  Builder.emit b (Instr.Binop { op = Op.Mul; dst = d; a = 0; b = 1 });
  Builder.ret b (Some d);
  let r = Builder.finish b in
  expect_not_ssa ~what:"duplicate definition"
    ~mentions:[ "f"; Printf.sprintf "r%d" d; "multiple definitions" ]
    (fun () -> Epre_ssa.Ssa_check.check r)

let test_use_before_def () =
  (* The register is in range (validate passes) but no instruction defines
     it. *)
  let b = Builder.start ~name:"f" ~nparams:1 in
  let ghost = Builder.fresh_reg b in
  let d = Builder.fresh_reg b in
  Builder.emit b (Instr.Binop { op = Op.Add; dst = d; a = 0; b = ghost });
  Builder.ret b (Some d);
  let r = Builder.finish b in
  expect_not_ssa ~what:"use before def"
    ~mentions:[ "f"; Printf.sprintf "r%d" ghost; "never defined" ]
    (fun () -> Epre_ssa.Ssa_check.check r)

let test_use_not_dominated () =
  (* Definition on one arm of a diamond, use in the join: defined, but not
     on every path. *)
  let b = Builder.start ~name:"f" ~nparams:1 in
  let left = Builder.new_block b in
  let right = Builder.new_block b in
  let join = Builder.new_block b in
  Builder.cbr b ~cond:0 ~ifso:left ~ifnot:right;
  Builder.switch b left;
  let d = Builder.int b 1 in
  Builder.jump b join;
  Builder.switch b right;
  Builder.jump b join;
  Builder.switch b join;
  Builder.ret b (Some d);
  let r = Builder.finish b in
  expect_not_ssa ~what:"use not dominated"
    ~mentions:
      [ "f"; Printf.sprintf "r%d" d; Printf.sprintf "B%d" join; "not dominated" ]
    (fun () -> Epre_ssa.Ssa_check.check r)

let test_phi_arg_not_dominating_pred () =
  (* A structurally valid phi whose argument is defined in the join itself,
     so it cannot dominate the predecessor it flows in from. *)
  let b = Builder.start ~name:"f" ~nparams:1 in
  let pre = Builder.new_block b in
  let join = Builder.new_block b in
  Builder.jump b pre;
  Builder.switch b pre;
  Builder.jump b join;
  Builder.switch b join;
  let late = Builder.int b 3 in
  let d = Builder.fresh_reg b in
  Block.prepend
    (Cfg.block (Builder.cfg b) join)
    (Instr.Phi { dst = d; args = [ (pre, late) ] });
  Builder.ret b (Some d);
  let r = Builder.finish b in
  expect_not_ssa ~what:"phi arg not dominating pred"
    ~mentions:[ "f"; Printf.sprintf "r%d" late; "phi arg" ]
    (fun () -> Epre_ssa.Ssa_check.check r)

let test_well_formed_passes_both () =
  let b = Builder.start ~name:"f" ~nparams:2 in
  let d = Builder.binop b Op.Add 0 1 in
  Builder.ret b (Some d);
  let r = Builder.finish b in
  Routine.validate r;
  Epre_ssa.Ssa_check.check r

let suite =
  [
    Alcotest.test_case "dangling edge names source and target" `Quick test_dangling_edge;
    Alcotest.test_case "phi preds mismatch names block" `Quick test_phi_preds_mismatch;
    Alcotest.test_case "phi arity mismatch names block" `Quick test_phi_arity_mismatch;
    Alcotest.test_case "phi after non-phi names block" `Quick test_phi_after_non_phi;
    Alcotest.test_case "out-of-range use names register" `Quick test_use_out_of_range;
    Alcotest.test_case "duplicate definition names register" `Quick test_duplicate_definition;
    Alcotest.test_case "use-before-def names register" `Quick test_use_before_def;
    Alcotest.test_case "undominated use names block" `Quick test_use_not_dominated;
    Alcotest.test_case "phi arg dominance names register" `Quick
      test_phi_arg_not_dominating_pred;
    Alcotest.test_case "well-formed routine passes" `Quick test_well_formed_passes_both;
  ]
