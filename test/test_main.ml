let () =
  Alcotest.run "epre"
    [
      ("util", Test_util.suite);
      ("ir", Test_ir.suite);
      ("ir-text", Test_ir_text.suite);
      ("analysis", Test_analysis.suite);
      ("ssa", Test_ssa.suite);
      ("frontend", Test_frontend.suite);
      ("interp", Test_interp.suite);
      ("opt", Test_opt.suite);
      ("pre", Test_pre.suite);
      ("reassoc", Test_reassoc.suite);
      ("gvn", Test_gvn.suite);
      ("pipeline", Test_pipeline.suite);
      ("degradation", Test_degradation.suite);
      ("naming-5.1", Test_naming_correctness.suite);
      ("random", Test_random_programs.suite);
      ("paper-example", Test_paper_example.suite);
      ("pre-classic", Test_pre_classic.suite);
      ("strength", Test_strength.suite);
      ("dvnt", Test_dvnt.suite);
      ("expr-tree-props", Test_expr_tree_props.suite);
      ("passes", Test_passes_registry.suite);
      ("adce", Test_adce.suite);
      ("fuzz", Test_fuzz_parsers.suite);
      ("fuzzer", Test_fuzz.suite);
      ("dataflow-props", Test_dataflow_props.suite);
      ("experiments", Test_experiments.suite);
      ("checksums", Test_workload_checksums.suite);
      ("cfg-dot", Test_cfg_dot.suite);
      ("validate", Test_validate.suite);
      ("verify", Test_verify.suite);
      ("harness", Test_harness.suite);
      ("telemetry", Test_telemetry.suite);
      ("observability", Test_observability.suite);
      ("service", Test_service.suite);
    ]
