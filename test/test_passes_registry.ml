(** Tests for [Epre.Passes], the named-pass registry behind
    [eprec --passes]. *)

open Epre_ir

let test_all_names_resolve () =
  List.iter
    (fun p ->
      match Epre.Passes.find p.Epre.Passes.name with
      | Some q -> Alcotest.(check string) "found itself" p.Epre.Passes.name q.Epre.Passes.name
      | None -> Alcotest.failf "pass %s not findable" p.Epre.Passes.name)
    Epre.Passes.all

let test_names_unique () =
  let names = List.map (fun p -> p.Epre.Passes.name) Epre.Passes.all in
  Alcotest.(check int) "no duplicates" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_parse_sequence () =
  (match Epre.Passes.parse_sequence "naming, pre ,dce" with
  | Ok ps ->
    Alcotest.(check (list string)) "parsed in order" [ "naming"; "pre"; "dce" ]
      (List.map (fun p -> p.Epre.Passes.name) ps)
  | Error n -> Alcotest.failf "unexpected unknown pass %s" n);
  match Epre.Passes.parse_sequence "naming,bogus,dce" with
  | Error "bogus" -> ()
  | Error n -> Alcotest.failf "wrong unknown pass %s" n
  | Ok _ -> Alcotest.fail "expected an error"

let test_every_pass_preserves_behaviour () =
  (* Each registered pass, run alone on every workload. [naming]-dependent
     passes get their prerequisite. The chaos:* fault injectors corrupt IR
     by design and are exercised by the harness suite instead. *)
  let needs_naming = [ "pre"; "pre-classic"; "cse-avail" ] in
  List.iter
    (fun pass ->
      List.iter
        (fun w ->
          let prog = Epre_workloads.Workloads.compile w in
          let p = Program.copy prog in
          List.iter
            (fun r ->
              if List.mem pass.Epre.Passes.name needs_naming then
                ignore (Epre_opt.Naming.run r);
              pass.Epre.Passes.run r;
              Routine.validate r)
            (Program.routines p);
          Helpers.check_same_behaviour
            ~what:(w.Epre_workloads.Workloads.name ^ "+" ^ pass.Epre.Passes.name)
            prog p)
        (List.filteri (fun i _ -> i mod 6 = 0) Epre_workloads.Workloads.all))
    (List.filter (fun p -> not (Epre.Passes.is_chaos p)) Epre.Passes.all)

let test_chaos_entries_registered () =
  List.iter
    (fun kind ->
      let name = Epre_harness.Chaos.name kind in
      match Epre.Passes.find name with
      | Some p ->
        Alcotest.(check bool) (name ^ " classified as chaos") true
          (Epre.Passes.is_chaos p)
      | None -> Alcotest.failf "chaos pass %s not registered" name)
    Epre_harness.Chaos.all_kinds;
  List.iter
    (fun p ->
      if Epre.Passes.is_chaos p then
        Alcotest.(check bool) (p.Epre.Passes.name ^ " resolvable as chaos kind")
          true
          (Option.is_some (Epre_harness.Chaos.of_name p.Epre.Passes.name)))
    Epre.Passes.all

let test_custom_sequence_end_to_end () =
  let prog =
    Helpers.compile
      {|
fn main(): int {
  var s: int;
  var i: int;
  for i = 1 to 20 {
    s = s + i * 4 + (i - 1) * 4;
  }
  return s;
}
|}
  in
  let reference = Helpers.run_int prog in
  match Epre.Passes.parse_sequence "distribute,gvn,pre,strength,constprop,peephole-shift,dvnt,dce,coalesce,clean" with
  | Error n -> Alcotest.failf "unknown pass %s" n
  | Ok ps ->
    Epre.Passes.run_sequence ps prog;
    Alcotest.(check int) "semantics through a 10-pass custom pipeline" reference
      (Helpers.run_int prog)

let suite =
  [
    Alcotest.test_case "registry resolves" `Quick test_all_names_resolve;
    Alcotest.test_case "names unique" `Quick test_names_unique;
    Alcotest.test_case "sequence parsing" `Quick test_parse_sequence;
    Alcotest.test_case "every pass preserves behaviour" `Slow
      test_every_pass_preserves_behaviour;
    Alcotest.test_case "chaos entries registered" `Quick test_chaos_entries_registered;
    Alcotest.test_case "custom 10-pass pipeline" `Quick test_custom_sequence_end_to_end;
  ]
