(** Tests for the redundancy-auditor stack: site classification and
    down-safety in [Epre_analysis.Audit], the [Pressure] and [Valnum]
    estimators, the shared [Expr_flow] systems the auditor reads (and
    their agreement with the PRE engine), and the outward plumbing —
    [Epre_verify.Analyze] postconditions, harness audit meta and the
    [analyze.*] telemetry counters. The per-rule negative corpus lives
    in [Test_verify]; this file covers the measurement layer. *)

open Epre_ir
open Epre_util
module Audit = Epre_analysis.Audit
module Pressure = Epre_analysis.Pressure
module Valnum = Epre_analysis.Valnum
module Expr_flow = Epre_analysis.Expr_flow
module Analyze = Epre_verify.Analyze
module Verify = Epre_verify.Verify
module Harness = Epre_harness.Harness
module Metrics = Epre_telemetry.Metrics
module Tjson = Epre_telemetry.Tjson
module Workloads = Epre_workloads.Workloads

let parse text = Ir_text.parse_program ~validate:true text

let routine text = Program.find_exn (parse text) "f"

(* ------------------------------------------------------------------ *)
(* Site classification                                                  *)

let cls_at (report : Audit.report) ~block ~index =
  match
    List.find_opt
      (fun (s : Audit.site) -> s.block = block && s.index = index)
      report.Audit.sites
  with
  | Some s -> s
  | None -> Alcotest.failf "no evaluation site at B%d:%d" block index

let check_cls what want (s : Audit.site) =
  Alcotest.(check string)
    what
    (Audit.classification_to_string want)
    (Audit.classification_to_string s.cls)

(* Straight-line re-evaluation into the canonical name: the second
   [add] is fully redundant, the first is clean. *)
let test_classify_full () =
  let report =
    Audit.run
      (routine
         {|
routine f(r0, r1) entry B0 regs 4 {
B0:
  r2 = add r0, r1
  r3 = mul r2, r0
  r2 = add r0, r1
  return r2
}
|})
  in
  check_cls "first evaluation" Audit.Clean (cls_at report ~block:0 ~index:0);
  check_cls "re-evaluation" Audit.Full (cls_at report ~block:0 ~index:2)

(* Diamond: the join re-evaluates what only one arm computed —
   partially, not fully, available. *)
let test_classify_partial () =
  let report =
    Audit.run
      (routine
         {|
routine f(r0, r1) entry B0 regs 4 {
B0:
  cbr r0, B1, B2
B1:
  r2 = add r0, r1
  jump B3
B2:
  jump B3
B3:
  r2 = add r0, r1
  return r2
}
|})
  in
  check_cls "join evaluation" Audit.Partial (cls_at report ~block:3 ~index:0)

(* A non-canonical recomputation is value-redundant: the congruent
   register [r2] definitely holds the value at the site. *)
let test_classify_value () =
  let report =
    Audit.run
      (routine
         {|
routine f(r0, r1) entry B0 regs 5 {
B0:
  r2 = add r0, r1
  r3 = add r0, r1
  r4 = mul r2, r3
  return r4
}
|})
  in
  let s = cls_at report ~block:0 ~index:1 in
  check_cls "recomputation" Audit.Value s;
  Alcotest.(check (list int)) "congruent holder" [ 2 ] s.Audit.value_regs

(* Down-safety: hoisted above the branch, the evaluation is wasted on
   the fall-through path; kept under the branch it is not. *)
let test_speculative () =
  let hoisted =
    Audit.run
      (routine
         {|
routine f(r0, r1) entry B0 regs 4 {
B0:
  r2 = add r0, r1
  cbr r0, B1, B2
B1:
  return r2
B2:
  return r0
}
|})
  in
  let sunk =
    Audit.run
      (routine
         {|
routine f(r0, r1) entry B0 regs 4 {
B0:
  cbr r0, B1, B2
B1:
  r2 = add r0, r1
  return r2
B2:
  return r0
}
|})
  in
  Alcotest.(check bool)
    "hoisted evaluation is speculative" true
    (cls_at hoisted ~block:0 ~index:0).Audit.speculative;
  Alcotest.(check int) "speculative count" 1 hoisted.Audit.speculative_count;
  Alcotest.(check bool)
    "guarded evaluation is down-safe" false
    (cls_at sunk ~block:1 ~index:0).Audit.speculative;
  Alcotest.(check int) "no speculation when guarded" 0 sunk.Audit.speculative_count

(* The residual score counts exactly the Full and Partial sites. *)
let test_residual () =
  let clean =
    Audit.run
      (routine
         {|
routine f(r0, r1) entry B0 regs 3 {
B0:
  r2 = add r0, r1
  return r2
}
|})
  in
  Alcotest.(check int) "clean routine" 0 (Audit.residual clean);
  let redundant =
    Audit.run
      (routine
         {|
routine f(r0, r1) entry B0 regs 4 {
B0:
  r2 = add r0, r1
  r3 = mul r2, r0
  r2 = add r0, r1
  return r2
}
|})
  in
  Alcotest.(check int) "one full site left" 1 (Audit.residual redundant)

(* ------------------------------------------------------------------ *)
(* Pressure                                                             *)

let test_pressure () =
  (* Chained: each temporary dies feeding the next — peak 2. *)
  let chained =
    Pressure.compute
      (routine
         {|
routine f(r0) entry B0 regs 4 {
B0:
  r1 = add r0, r0
  r2 = mul r1, r1
  r3 = add r2, r0
  return r3
}
|})
  in
  Alcotest.(check int) "chained peak" 2 (Pressure.max_pressure chained);
  Alcotest.(check int) "block 0 peak" 2 (Pressure.block_pressure chained 0);
  (* Overlapping: r1, r2, r3 all live across the third definition. *)
  let overlapped =
    Pressure.compute
      (routine
         {|
routine f(r0) entry B0 regs 7 {
B0:
  r1 = add r0, r0
  r2 = mul r0, r0
  r3 = sub r0, r0
  r5 = add r1, r2
  r6 = add r5, r3
  return r6
}
|})
  in
  Alcotest.(check int) "overlapping peak" 3 (Pressure.max_pressure overlapped);
  Alcotest.(check (list (pair int int)))
    "per-block listing" [ (0, 3) ] (Pressure.per_block overlapped)

(* ------------------------------------------------------------------ *)
(* Value numbering                                                      *)

let test_valnum_congruence () =
  let r =
    routine
      {|
routine f(r0, r1) entry B0 regs 5 {
B0:
  r2 = add r0, r1
  r3 = add r0, r1
  r4 = mul r2, r2
  return r4
}
|}
  in
  let vn = Valnum.compute r in
  Alcotest.(check bool) "parameter is stable" true (Valnum.stable vn 0);
  Alcotest.(check bool) "single pure def is stable" true (Valnum.stable vn 2);
  Alcotest.(check bool) "congruent evaluations" true (Valnum.same_class vn 2 3);
  Alcotest.(check bool)
    "different expressions differ" false (Valnum.same_class vn 2 4)

let test_valnum_loop_carried () =
  (* r2's only definition reads r2 — the cycle makes its value
     iteration-dependent, so it must not be called stable. *)
  let r =
    routine
      {|
routine f(r0) entry B0 regs 3 {
B0:
  r2 = const 0
  jump B1
B1:
  r2 = add r2, r0
  cbr r2, B1, B2
B2:
  return r2
}
|}
  in
  let vn = Valnum.compute r in
  Alcotest.(check bool) "loop-carried register" false (Valnum.stable vn 2)

(* ------------------------------------------------------------------ *)
(* Expr_flow invariants                                                 *)

(* Availability implies partial availability, block by block, on every
   workload routine: ∩ over paths can never see more than ∪. *)
let test_pav_superset_of_av () =
  List.iter
    (fun w ->
      let prog = Workloads.compile w in
      List.iter
        (fun (r : Routine.t) ->
          let fl = Expr_flow.build r in
          let avail = Expr_flow.availability fl in
          let pav = Expr_flow.partial_availability fl in
          Array.iteri
            (fun id av_in ->
              List.iter
                (fun e ->
                  if not (Bitset.mem pav.Epre_analysis.Dataflow.ins.(id) e)
                  then
                    Alcotest.failf "%s/%s B%d: avail bit %d not in pav"
                      w.Workloads.name r.Routine.name id e)
                (Bitset.elements av_in))
            avail.Epre_analysis.Dataflow.ins)
        (Program.routines prog))
    Workloads.all

(* The auditor judges A002 by the engine's own equations, so after the
   engine runs to fixpoint the delete set must be empty — on the
   diamond and on every workload routine at the partial level. *)
let test_lcm_delete_empty_after_pre () =
  let check_routine what (r : Routine.t) =
    let fl = Expr_flow.build r in
    Array.iteri
      (fun id del ->
        if not (Bitset.is_empty del) then
          Alcotest.failf "%s B%d: non-empty LCM delete set after PRE" what id)
      (Expr_flow.lcm_delete fl)
  in
  let r =
    routine
      {|
routine f(r0, r1) entry B0 regs 4 {
B0:
  cbr r0, B1, B2
B1:
  r2 = add r0, r1
  jump B3
B2:
  jump B3
B3:
  r2 = add r0, r1
  return r2
}
|}
  in
  (* Before: the join's evaluation is in DELETE — exactly the A002 bait. *)
  let before = Expr_flow.lcm_delete (Expr_flow.build r) in
  Alcotest.(check bool)
    "join evaluation deletable before PRE" false
    (Bitset.is_empty before.(3));
  ignore (Epre_opt.Naming.run r);
  ignore (Epre_pre.Pre.run r);
  Routine.validate r;
  check_routine "diamond" r

(* ------------------------------------------------------------------ *)
(* Plumbing: postconditions, harness meta, telemetry                    *)

let test_audit_postconditions () =
  Alcotest.(check (option bool)) "pre is audited, expects no residue"
    (Some true) (Analyze.audited_pass "pre");
  Alcotest.(check (option bool)) "gvn is audited, enabling only"
    (Some false) (Analyze.audited_pass "gvn");
  Alcotest.(check (option bool)) "unknown pass" None
    (Analyze.audited_pass "no-such-pass");
  let names = List.map fst Analyze.audit_postconditions in
  Alcotest.(check int) "no duplicate pass names"
    (List.length names)
    (List.length (List.sort_uniq String.compare names))

(* A no-op pass named "pre" leaves the planted full redundancy behind:
   the harness must record the finding in meta and must not roll back. *)
let test_harness_audit_meta () =
  let prog =
    parse
      {|
routine f(r0, r1) entry B0 regs 4 {
B0:
  r2 = add r0, r1
  r3 = mul r2, r0
  r2 = add r0, r1
  return r2
}
|}
  in
  let config = { Harness.default_config with audit = true } in
  let records =
    Harness.supervise config
      ~passes:[ { Harness.pass_name = "pre"; run = (fun _ -> ()) } ]
      prog
  in
  match records with
  | [ record ] ->
    Alcotest.(check string) "outcome" "passed"
      (match record.Harness.outcome with
      | Harness.Passed -> "passed"
      | Harness.Rolled_back r -> Harness.reason_to_string r);
    let findings =
      match List.assoc_opt "audit_findings" record.Harness.meta with
      | Some (Tjson.Int n) -> n
      | _ -> Alcotest.fail "no audit_findings in meta"
    in
    Alcotest.(check bool) "at least one finding" true (findings >= 1);
    let rules =
      match List.assoc_opt "audit_rules" record.Harness.meta with
      | Some (Tjson.Arr rs) ->
        List.filter_map (function Tjson.Str s -> Some s | _ -> None) rs
      | _ -> Alcotest.fail "no audit_rules in meta"
    in
    Alcotest.(check bool) "A001 reported" true (List.mem "A001" rules)
  | rs -> Alcotest.failf "expected one record, got %d" (List.length rs)

let test_record_metrics () =
  Metrics.reset_for_testing ();
  let r =
    routine
      {|
routine f(r0, r1) entry B0 regs 4 {
B0:
  r2 = add r0, r1
  r3 = mul r2, r0
  r2 = add r0, r1
  return r2
}
|}
  in
  (match Analyze.check_routine ~expect_pre:true r with
  | Some (_, diags) -> Analyze.record_metrics diags
  | None -> Alcotest.fail "routine should be auditable");
  Alcotest.(check bool) "analyze.A001 counted" true
    (Metrics.get ~routine:"f" ~name:"analyze.A001" >= 1);
  Metrics.reset_for_testing ()

(* ------------------------------------------------------------------ *)
(* The effectiveness claim, end to end: after the full pipeline at any
   PRE level, no workload routine carries an A-error.                   *)

let test_workloads_no_audit_errors () =
  List.iter
    (fun w ->
      let reference = Workloads.compile w in
      List.iter
        (fun level ->
          let prog, _stats =
            Epre.Pipeline.optimized_copy ~level reference
          in
          let expect_pre = level <> Epre.Pipeline.Baseline in
          let _, diags =
            Analyze.check_program ~expect_pre ~baseline:reference prog
          in
          match Verify.errors diags with
          | [] -> ()
          | errs ->
            Alcotest.failf "%s at %s: %d audit error(s), first: %s"
              w.Workloads.name
              (Epre.Pipeline.level_to_string level)
              (List.length errs)
              (Epre_verify.Diag.to_string (List.hd errs)))
        Epre.Pipeline.all_levels)
    Workloads.all

let suite =
  [
    Alcotest.test_case "classify: fully redundant" `Quick test_classify_full;
    Alcotest.test_case "classify: partially redundant" `Quick
      test_classify_partial;
    Alcotest.test_case "classify: value redundant" `Quick test_classify_value;
    Alcotest.test_case "down-safety verdicts" `Quick test_speculative;
    Alcotest.test_case "residual score" `Quick test_residual;
    Alcotest.test_case "pressure: known peaks" `Quick test_pressure;
    Alcotest.test_case "valnum: congruence" `Quick test_valnum_congruence;
    Alcotest.test_case "valnum: loop-carried not stable" `Quick
      test_valnum_loop_carried;
    Alcotest.test_case "expr-flow: pav contains avail" `Quick
      test_pav_superset_of_av;
    Alcotest.test_case "expr-flow: delete set empty after pre" `Quick
      test_lcm_delete_empty_after_pre;
    Alcotest.test_case "audit postconditions table" `Quick
      test_audit_postconditions;
    Alcotest.test_case "harness audit meta" `Quick test_harness_audit_meta;
    Alcotest.test_case "analyze.* telemetry" `Quick test_record_metrics;
    Alcotest.test_case "workloads carry no audit errors" `Slow
      test_workloads_no_audit_errors;
  ]
