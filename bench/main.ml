(* Benchmark harness.

   Regenerates every table and figure-level experiment of the paper:

     table1     - Table 1: dynamic ILOC operation counts per workload at the
                  four optimization levels, with percentage improvements
     table2     - Table 2: static code expansion from forward propagation
     hierarchy  - Section 5.3: dominator CSE vs available CSE vs PRE
     interaction- Section 5.2: premature mul->shift strength reduction
                  blocking reassociation
     bechamel   - compile-time cost of each optimizer pass (Bechamel, one
                  Test.make per pass, plus one per table-regeneration row)
     baseline   - write BENCH_pipeline.json: per-pass wall-clock ns/run
                  (monotonic clock, best of several suite sweeps) plus the
                  Table 1 dynamic-count table — the perf trajectory seed
                  that CI uploads and future PRs regress against
     regress    - perf regression gate: re-time every pass and fail if any
                  regressed >25% vs a committed BENCH_pipeline.json,
                  after normalizing out the machine-speed difference
     traffic    - write BENCH_traffic.json: Zipf-distributed compile jobs
                  through the service pool + content-hash cache (throughput,
                  p50/p99 latency, hit rate, per-domain utilization);
                  `traffic small` is the CI smoke variant (2 workers)

   With no argument, everything except the (slow) bechamel timings runs;
   `bench/main.exe all` includes them. *)

let section title = Printf.printf "\n=== %s ===\n%!" title

(* ------------------------------------------------------------------ *)
(* Paper tables                                                        *)

let run_table1 () =
  section
    "Table 1: dynamic operation counts (baseline / partial / reassociation / distribution)";
  print_string (Epre.Experiments.render_table1 (Epre.Experiments.table1 ()))

let run_table2 () =
  section "Table 2: code expansion from forward propagation (static ILOC operations)";
  print_string (Epre.Experiments.render_table2 (Epre.Experiments.table2 ()))

let run_hierarchy () =
  section "Section 5.3: redundancy-elimination hierarchy (dynamic operations)";
  print_string (Epre.Experiments.render_hierarchy (Epre.Experiments.hierarchy ()))

(* Section 5.2: rewriting x*2^k into shifts *before* reassociation destroys
   grouping opportunities ("this effect is measurable; indeed, we have
   accidentally measured it more than once"). Compare the distribution
   pipeline against the same pipeline with an early shift-rewriting
   peephole slipped in front. *)
let run_interaction () =
  section "Section 5.2: premature mul->shift strength reduction";
  let source =
    {|
fn f(n: int, x: int, y: int): int {
  var s: int;
  var i: int;
  for i = 1 to n {
    // Left association gives ((x*i)*2): a premature shift freezes the 2
    // at the outside, while reassociation would sort it inward to form
    // the hoistable products 2*x and 2*y.
    s = s + x * i * 2 + y * i * 2;
  }
  return s;
}

fn main(): int {
  return f(100, 3, 5);
}
|}
  in
  let shift_cfg = { Epre_opt.Peephole.mul_to_shift = true } in
  let measure ~premature_shift =
    let prog = Epre_frontend.Frontend.compile_string source in
    List.iter
      (fun r ->
        if premature_shift then ignore (Epre_opt.Peephole.run ~config:shift_cfg r);
        ignore
          (Epre_reassoc.Reassociate.run
             ~config:{ Epre_reassoc.Expr_tree.reassoc_float = true; distribute = true }
             r);
        ignore (Epre_gvn.Gvn.run r);
        ignore (Epre_pre.Pre.run r);
        ignore (Epre_opt.Constprop.run r);
        ignore (Epre_opt.Peephole.run ~config:shift_cfg r);
        ignore (Epre_opt.Dce.run r);
        ignore (Epre_opt.Coalesce.run r);
        ignore (Epre_opt.Clean.run r))
      (Epre_ir.Program.routines prog);
    let result = Epre_interp.Interp.run prog ~entry:"main" ~args:[] in
    ( Epre_interp.Counts.total result.Epre_interp.Interp.counts,
      result.Epre_interp.Interp.return_value )
  in
  let good, v1 = measure ~premature_shift:false in
  let bad, v2 = measure ~premature_shift:true in
  assert (v1 = v2);
  Printf.printf "shift rewriting after reassociation : %6d dynamic operations\n" good;
  Printf.printf "shift rewriting before reassociation: %6d dynamic operations\n" bad;
  Printf.printf "penalty for the premature rewrite   : %+6d (%s)\n" (bad - good)
    (if bad >= good then "the Section 5.2 effect" else "unexpected!")

(* Ablation: the paper's Drechsler–Stadel edge placement vs the original
   Morel–Renvoise block-end placement. Edge placement should win wherever
   critical edges would otherwise block an insertion. *)
let run_ablation () =
  section "Ablation: edge-placement PRE (Drechsler-Stadel/LCM) vs Morel-Renvoise";
  Printf.printf "%-12s %14s %16s\n" "routine" "edge (paper)" "block-end (M-R)";
  List.iter
    (fun w ->
      let prog = Epre_workloads.Workloads.compile w in
      let measure pre_run =
        let p = Epre_ir.Program.copy prog in
        List.iter
          (fun r ->
            ignore (Epre_opt.Naming.run r);
            pre_run r;
            ignore (Epre_opt.Constprop.run r);
            ignore (Epre_opt.Peephole.run r);
            ignore (Epre_opt.Dce.run r);
            ignore (Epre_opt.Coalesce.run r);
            ignore (Epre_opt.Clean.run r))
          (Epre_ir.Program.routines p);
        let result = Epre_interp.Interp.run p ~entry:"main" ~args:[] in
        Epre_interp.Counts.total result.Epre_interp.Interp.counts
      in
      let lcm = measure (fun r -> ignore (Epre_pre.Pre.run r)) in
      let mr = measure (fun r -> ignore (Epre_pre.Pre_classic.run r)) in
      Printf.printf "%-12s %14d %16d\n" w.Epre_workloads.Workloads.name lcm mr)
    Epre_workloads.Workloads.all

(* Extension: operator strength reduction, the pass the paper names as
   missing ("we expect that strength reduction will improve the code beyond
   the results shown in this paper", Section 4.1/5.2). Under the unit-cost
   operation metric a reduced multiply trades 1:1 against the added update,
   so the meaningful column is dynamic multiplies/divides. *)
let run_strength () =
  section "Extension: strength reduction after the distribution pipeline (dynamic mult/div)";
  Printf.printf "%-12s %18s %18s\n" "routine" "distribution" "+ strength red.";
  List.iter
    (fun w ->
      let prog = Epre_workloads.Workloads.compile w in
      let p, _ = Epre.Pipeline.optimized_copy ~level:Epre.Pipeline.Distribution prog in
      let mults q =
        (Epre_interp.Interp.run q ~entry:"main" ~args:[]).Epre_interp.Interp.counts
          .Epre_interp.Counts.mults
      in
      let before = mults p in
      List.iter
        (fun r ->
          ignore (Epre_opt.Strength.run r);
          ignore (Epre_opt.Constprop.run r);
          ignore (Epre_opt.Peephole.run r);
          ignore (Epre_opt.Dce.run r);
          ignore (Epre_opt.Coalesce.run r);
          ignore (Epre_opt.Clean.run r))
        (Epre_ir.Program.routines p);
      Printf.printf "%-12s %18d %18d\n" w.Epre_workloads.Workloads.name before (mults p))
    Epre_workloads.Workloads.all

(* Extension: conservative vs control-dependence DCE (Cytron et al. 7.1 is
   the paper's citation for its dead code elimination; [Adce] implements the
   control-dependence formulation in full). *)
let run_adce () =
  section "Extension: conservative DCE vs control-dependence ADCE (dynamic operations)";
  let measure prog pass =
    let p = Epre_ir.Program.copy prog in
    List.iter
      (fun r ->
        pass r;
        ignore (Epre_opt.Clean.run r))
      (Epre_ir.Program.routines p);
    let result = Epre_interp.Interp.run p ~entry:"main" ~args:[] in
    Epre_interp.Counts.total result.Epre_interp.Interp.counts
  in
  (* On the numeric suite the two coincide: hand-written kernels contain no
     dead control flow (every loop feeds the checksum). The difference
     appears exactly where Cytron et al. place it: code with dead regions. *)
  let suite_same = ref true in
  List.iter
    (fun w ->
      let prog = Epre_workloads.Workloads.compile w in
      if measure prog (fun r -> ignore (Epre_opt.Dce.run r))
         <> measure prog (fun r -> ignore (Epre_opt.Adce.run r))
      then suite_same := false)
    Epre_workloads.Workloads.all;
  Printf.printf "workload suite: dce and adce %s on all %d workloads\n"
    (if !suite_same then "coincide (no dead control flow in the kernels)" else "differ")
    (List.length Epre_workloads.Workloads.all);
  Printf.printf "%-22s %14s %14s\n" "dead-region micro" "dce+clean" "adce+clean";
  List.iter
    (fun (label, src) ->
      let prog = Epre_frontend.Frontend.compile_string src in
      let plain = measure prog (fun r -> ignore (Epre_opt.Dce.run r)) in
      let aggressive = measure prog (fun r -> ignore (Epre_opt.Adce.run r)) in
      Printf.printf "%-22s %14d %14d\n" label plain aggressive)
    [ ( "dead-loop",
        "fn main(): int { var d: int; var i: int; for i = 1 to 200 { d = d + i * i; } return 42; }" );
      ( "dead-nest",
        "fn main(): int { var d: int; var i: int; var j: int; for i = 1 to 30 { for j = 1 to 30 { d = d + i * j; } } return 7; }" );
      ( "dead-diamond",
        "fn main(): int { var d: int; var i: int; for i = 1 to 100 { if (mod(i, 2) == 0) { d = 3; } else { d = 4; } } return 9; }" ) ]

(* ------------------------------------------------------------------ *)
(* Bechamel timing benches                                             *)

let suite_cache =
  lazy (List.map Epre_workloads.Workloads.compile Epre_workloads.Workloads.all)

let bench_pass name pass =
  (* Each run works on fresh copies: passes mutate. *)
  Bechamel.Test.make ~name
    (Bechamel.Staged.stage (fun () ->
         List.iter
           (fun prog ->
             let p = Epre_ir.Program.copy prog in
             List.iter pass (Epre_ir.Program.routines p))
           (Lazy.force suite_cache)))

let reassoc_cfg = { Epre_reassoc.Expr_tree.reassoc_float = true; distribute = true }

(* The per-pass timing subjects, shared between the Bechamel benches and
   the `baseline` JSON snapshot so the two report the same work. *)
let pass_specs : (string * (Epre_ir.Routine.t -> unit)) list =
  [
    ("ssa-roundtrip", fun r -> ignore (Epre_ssa.Ssa.destroy (Epre_ssa.Ssa.build r)));
    ("constprop", fun r -> ignore (Epre_opt.Constprop.run r));
    ("peephole", fun r -> ignore (Epre_opt.Peephole.run r));
    ("dce", fun r -> ignore (Epre_opt.Dce.run r));
    ("coalesce", fun r -> ignore (Epre_opt.Coalesce.run r));
    ( "naming+pre",
      fun r ->
        ignore (Epre_opt.Naming.run r);
        ignore (Epre_pre.Pre.run r) );
    ("reassociate", fun r -> ignore (Epre_reassoc.Reassociate.run ~config:reassoc_cfg r));
    ("gvn", fun r -> ignore (Epre_gvn.Gvn.run r));
  ]

let benches () =
  let open Bechamel in
  List.map (fun (name, pass) -> bench_pass name pass) pass_specs
  @ [
    Test.make ~name:"table1-row-saxpy"
      (Staged.stage (fun () ->
           ignore
             (Epre.Experiments.table1_row
                (Option.get (Epre_workloads.Workloads.find "saxpy")))));
    Test.make ~name:"table2-row-saxpy"
      (Staged.stage (fun () ->
           ignore
             (Epre.Experiments.table2_row
                (Option.get (Epre_workloads.Workloads.find "saxpy")))));
  ]

let run_bechamel () =
  section "Bechamel: per-pass compile-time cost over the whole suite";
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analysis =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-24s %12.0f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "%-24s (no estimate)\n%!" name)
        analysis)
    (benches ())

(* ------------------------------------------------------------------ *)
(* Perf baseline snapshot                                              *)

(* Quick wall-clock estimate without Bechamel's OLS machinery: best of
   [runs] sweeps over fresh copies of the whole workload suite, on the
   telemetry monotonic clock. Coarser than `bechamel`, but fast enough for
   CI and stable enough to regress against. *)
let baseline_runs = 5

let time_pass pass =
  let sweep () =
    List.iter
      (fun prog ->
        let p = Epre_ir.Program.copy prog in
        List.iter pass (Epre_ir.Program.routines p))
      (Lazy.force suite_cache)
  in
  sweep () (* warm-up: fault in the suite cache and the pass's tables *);
  let best = ref Int64.max_int in
  for _ = 1 to baseline_runs do
    let t0 = Epre_telemetry.Telemetry.Clock.now_ns () in
    sweep ();
    let d = Int64.sub (Epre_telemetry.Telemetry.Clock.now_ns ()) t0 in
    if Int64.compare d !best < 0 then best := d
  done;
  Int64.to_int !best

let baseline_json () =
  let module J = Epre_telemetry.Tjson in
  let passes =
    List.map
      (fun (name, pass) ->
        J.Obj
          [
            ("name", J.Str name);
            ("ns_per_run", J.Int (time_pass pass));
            ("runs", J.Int baseline_runs);
          ])
      pass_specs
  in
  let counts =
    List.map
      (fun (r : Epre.Experiments.table1_row) ->
        J.Obj
          [
            ("routine", J.Str r.Epre.Experiments.name);
            ("baseline", J.Int r.Epre.Experiments.baseline);
            ("partial", J.Int r.Epre.Experiments.partial);
            ("reassociation", J.Int r.Epre.Experiments.reassociation);
            ("distribution", J.Int r.Epre.Experiments.distribution);
          ])
      (Epre.Experiments.table1 ())
  in
  J.Obj
    [
      ("schema", J.Str "epre/bench-baseline/v1");
      ("note", J.Str "per-pass wall clock over one sweep of the workload \
                      suite (best of runs), plus Table 1 dynamic counts");
      ("passes", J.Arr passes);
      ("dynamic_counts", J.Arr counts);
    ]

let run_baseline () =
  section "Perf baseline: per-pass wall clock + dynamic counts -> BENCH_pipeline.json";
  let json = Epre_telemetry.Tjson.to_string (baseline_json ()) in
  let oc = open_out_bin "BENCH_pipeline.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_pipeline.json (%d bytes)\n" (String.length json + 1)

(* Perf regression gate: re-time every pass and compare against a
   committed BENCH_pipeline.json. The committed numbers come from a
   different machine, so raw ns are incomparable; instead the fresh/
   baseline ratios are normalized by their geometric mean (the machine
   speed factor) and any pass more than 25% above its normalized
   expectation fails the gate. A uniform slowdown (slower CI runner)
   passes; one pass regressing relative to its peers does not. *)
let regress_threshold = 1.25

let run_regress path =
  section (Printf.sprintf "Perf regression gate: fresh timings vs %s" path);
  let module J = Epre_telemetry.Tjson in
  let text =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let doc =
    match J.parse text with
    | Ok j -> j
    | Error m ->
      Printf.printf "FAIL: %s does not parse: %s\n" path m;
      exit 1
  in
  let baseline =
    match J.member "passes" doc with
    | Some (J.Arr passes) ->
      List.filter_map
        (fun p ->
          match (J.member "name" p, J.member "ns_per_run" p) with
          | Some (J.Str n), Some (J.Int ns) when ns > 0 -> Some (n, ns)
          | _ -> None)
        passes
    | _ ->
      Printf.printf "FAIL: %s has no passes array\n" path;
      exit 1
  in
  let fresh =
    List.map (fun (name, pass) -> (name, time_pass pass)) pass_specs
  in
  let ratios =
    List.filter_map
      (fun (name, ns) ->
        Option.map
          (fun base -> (name, float_of_int ns /. float_of_int base))
          (List.assoc_opt name baseline))
      fresh
  in
  if ratios = [] then begin
    Printf.printf "FAIL: no pass of the baseline matches the current registry\n";
    exit 1
  end;
  let machine_factor =
    exp
      (List.fold_left (fun acc (_, r) -> acc +. log r) 0.0 ratios
      /. float_of_int (List.length ratios))
  in
  Printf.printf "machine speed factor: %.2fx the baseline host\n" machine_factor;
  Printf.printf "%-16s %12s %12s %10s\n" "pass" "baseline ns" "fresh ns" "relative";
  let failures = ref 0 in
  List.iter
    (fun (name, ratio) ->
      let relative = ratio /. machine_factor in
      let base = List.assoc name baseline in
      let ns = List.assoc name fresh in
      let verdict = if relative > regress_threshold then " REGRESSED" else "" in
      if relative > regress_threshold then incr failures;
      Printf.printf "%-16s %12d %12d %9.2fx%s\n" name base ns relative verdict)
    ratios;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name baseline) then
        Printf.printf "%-16s (new pass, no baseline - skipped)\n" name)
    fresh;
  if !failures > 0 then begin
    Printf.printf "FAIL: %d pass(es) regressed more than %.0f%%\n" !failures
      ((regress_threshold -. 1.0) *. 100.0);
    exit 1
  end;
  Printf.printf "gate passed: no pass regressed more than %.0f%%\n"
    ((regress_threshold -. 1.0) *. 100.0)

(* ------------------------------------------------------------------ *)
(* Compile-service traffic benchmark                                   *)

(* Synthetic compile traffic for the service: a corpus of distinct
   generated programs, sampled with Zipf-distributed repeats (rank r drawn
   with probability proportional to 1/r — a few hot programs recompiled
   constantly, a long tail seen once or twice, the shape of a build
   farm's traffic). The driver measures the three claims the service
   makes: parallel speedup over the serial reference path, cache-hit rate
   under repetition, and byte-identical results however the work is
   scheduled. *)

module Service = Epre_service.Service
module Pool = Epre_service.Pool

(* Deterministic LCG (Numerical Recipes constants): same traffic every
   run, so BENCH_traffic.json diffs reflect the code, not the dice. *)
let lcg_next st = st := (!st * 1664525) + 1013904223 land 0x3FFFFFFF; !st land 0x3FFFFFFF

let zipf_ranks ~st ~n ~total =
  let weights = Array.init n (fun i -> 1.0 /. float_of_int (i + 1)) in
  let cumulative = Array.make n 0.0 in
  let sum = ref 0.0 in
  Array.iteri (fun i w -> sum := !sum +. w; cumulative.(i) <- !sum) weights;
  List.init total (fun _ ->
      let u = float_of_int (lcg_next st) /. 1073741824.0 *. !sum in
      let rec find i = if i >= n - 1 || cumulative.(i) >= u then i else find (i + 1) in
      find 0)

(* Latency quantiles go through the shared telemetry histogram — the same
   bucketing `eprec serve --metrics-out` exposes, so bench numbers and
   production metrics agree within bucket resolution. *)
let latency_quantiles_ms latencies_ms =
  let h = Epre_telemetry.Histogram.create () in
  List.iter
    (fun ms -> Epre_telemetry.Histogram.record h (int_of_float (ms *. 1e6)))
    latencies_ms;
  let m = Epre_telemetry.Histogram.merged h in
  let q p = float_of_int (Epre_telemetry.Histogram.quantile m p) /. 1e6 in
  (q 0.50, q 0.90, q 0.99)

let run_traffic ~small () =
  section
    (if small then "Service traffic (small): smoke-scale batch over the pool"
     else "Service traffic: Zipf-distributed compile jobs, parallel + cached");
  let distinct = if small then 24 else 150 in
  let total = if small then 120 else 2000 in
  let workers = if small then 2 else Pool.default_jobs () in
  let cores = Domain.recommended_domain_count () in
  (* Distinct programs from the fuzz generator (small, loop-heavy, varied);
     jobs carry their ILOC inline so the traffic run spends its time in the
     optimizer, not the frontend. *)
  let corpus =
    Array.init distinct (fun i ->
        let source = Epre_fuzz.Gen.source (i + 1) in
        let prog = Epre_frontend.Frontend.compile_string source in
        Epre_ir.Ir_text.print_program prog)
  in
  let st = ref 12345 in
  let ranks = zipf_ranks ~st ~n:distinct ~total in
  let jobs =
    List.mapi
      (fun i rank ->
        { Service.id = Printf.sprintf "job-%d" (i + 1);
          level = Epre.Pipeline.Partial;
          input = Service.Iloc corpus.(rank);
          emit = true })
      ranks
  in
  let run ~jobs:n ?cache () =
    Pool.with_pool ~jobs:n (fun pool ->
        Pool.reset_stats pool;
        let t0 = Epre_telemetry.Telemetry.Clock.now_ns () in
        let results = Pool.map_list pool (Service.run_job ?cache) jobs in
        let wall_ms = Epre_telemetry.Telemetry.Clock.elapsed_ms ~since:t0 in
        (results, wall_ms, Pool.stats pool))
  in
  (* Serial cold run, no cache: the reference both for results and wall
     clock. *)
  let serial_results, serial_ms, _ = run ~jobs:1 () in
  (* Parallel run against a fresh cache: Zipf repeats hit once their rank's
     first compile has been stored. *)
  let cache_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "eprec-traffic-%d" (Unix.getpid ()))
  in
  let cache = Epre_service.Cache.create ~dir:cache_dir () in
  let parallel_results, parallel_ms, pstats = run ~jobs:workers ~cache () in
  (* Warm rerun: everything already stored, so it must be all hits. *)
  let warm_results, warm_ms, _ = run ~jobs:workers ~cache () in
  let () =
    let rec rm p =
      if Sys.is_directory p then begin
        Array.iter (fun f -> rm (Filename.concat p f)) (Sys.readdir p);
        Sys.rmdir p
      end
      else Sys.remove p
    in
    try rm cache_dir with Sys_error _ -> ()
  in
  let iloc_of (r : Service.result_line) = (r.Service.job_id, r.Service.ok, r.Service.iloc) in
  let identical = List.map iloc_of serial_results = List.map iloc_of parallel_results in
  let warm_identical = List.map iloc_of serial_results = List.map iloc_of warm_results in
  let totals rs =
    List.fold_left
      (fun (h, m) (r : Service.result_line) ->
        (h + r.Service.job_counts.Service.hits, m + r.Service.job_counts.Service.misses))
      (0, 0) rs
  in
  let hits, misses = totals parallel_results in
  let warm_hits, warm_misses = totals warm_results in
  let hit_rate = float_of_int hits /. float_of_int (max 1 (hits + misses)) in
  let p50, p90, p99 =
    latency_quantiles_ms
      (List.map (fun (r : Service.result_line) -> r.Service.latency_ms) parallel_results)
  in
  let throughput = float_of_int total /. (parallel_ms /. 1000.0) in
  let speedup = serial_ms /. parallel_ms in
  let utilization =
    Array.to_list
      (Array.map
         (fun busy -> Int64.to_float busy /. 1e6 /. parallel_ms)
         pstats.Pool.busy_ns)
  in
  let helper_util = Int64.to_float pstats.Pool.helper_busy_ns /. 1e6 /. parallel_ms in
  Printf.printf "jobs: %d over %d distinct programs, %d worker(s), %d core(s)\n"
    total distinct workers cores;
  Printf.printf "serial (cold, no cache): %8.1f ms\n" serial_ms;
  Printf.printf "parallel (cold cache):   %8.1f ms   speedup %.2fx, %.0f jobs/s\n"
    parallel_ms speedup throughput;
  Printf.printf "parallel (warm cache):   %8.1f ms   %d hit(s), %d miss(es)\n"
    warm_ms warm_hits warm_misses;
  Printf.printf "latency: p50 %.3f ms, p90 %.3f ms, p99 %.3f ms\n" p50 p90 p99;
  Printf.printf "cache: %d hit(s), %d miss(es) (%.1f%% hit rate)\n" hits misses
    (100.0 *. hit_rate);
  Printf.printf "results identical to serial: cold %b, warm %b\n" identical
    warm_identical;
  (* Hard claims. Speedup is only claimed where there are cores to earn
     it; a 1-core CI box still checks equality and cache behaviour. *)
  assert identical;
  assert warm_identical;
  assert (warm_misses = 0 && warm_hits = hits + misses);
  if small then assert (hits > 0) else assert (hit_rate >= 0.80);
  if cores >= 4 && workers >= 4 && not small then
    if speedup < 3.0 then begin
      Printf.printf "FAIL: expected >= 3x speedup on %d cores, got %.2fx\n"
        cores speedup;
      exit 1
    end;
  let module J = Epre_telemetry.Tjson in
  let json =
    J.Obj
      [ ("schema", J.Str "epre/bench-traffic/v1");
        ("note", J.Str "Zipf-distributed compile jobs through the service \
                        pool and content-hash cache; serial reference vs \
                        parallel cold vs warm rerun");
        ("small", J.Bool small);
        ("cores", J.Int cores);
        ("workers", J.Int workers);
        ("distinct_programs", J.Int distinct);
        ("total_jobs", J.Int total);
        ("serial_ms", J.Float serial_ms);
        ("parallel_ms", J.Float parallel_ms);
        ("warm_ms", J.Float warm_ms);
        ("speedup", J.Float speedup);
        ("throughput_jobs_per_s", J.Float throughput);
        ("latency_p50_ms", J.Float p50);
        ("latency_p90_ms", J.Float p90);
        ("latency_p99_ms", J.Float p99);
        ("cache_hits", J.Int hits);
        ("cache_misses", J.Int misses);
        ("cache_hit_rate", J.Float hit_rate);
        ("warm_hits", J.Int warm_hits);
        ("warm_misses", J.Int warm_misses);
        ("identical_to_serial", J.Bool (identical && warm_identical));
        ("per_domain_utilization", J.Arr (List.map (fun u -> J.Float u) utilization));
        ("helper_utilization", J.Float helper_util) ]
  in
  let oc = open_out_bin "BENCH_traffic.json" in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_traffic.json\n"

(* ------------------------------------------------------------------ *)
(* Service soak benchmark                                              *)

(* The Zipf traffic of [run_traffic], replayed through the full serve
   loop under every service fault class, serial and parallel. The soak
   asserts the fault-tolerance contract end to end: zero lost jobs,
   results in input order, serial and parallel runs reporting identical
   per-job (id, ok, outcome, iloc), and every successful output
   byte-identical to an undisturbed serial reference. Chaos firing is a
   pure function of (seed, fault, job id), so the serial and parallel
   runs face exactly the same faults. *)

module Chaos = Epre_harness.Chaos

type soak_row = {
  sk_id : string;
  sk_ok : bool;
  sk_outcome : string;
  sk_iloc : string option;
  sk_latency_ms : float;
}

let run_soak ~small () =
  section
    (if small then "Service soak (small): serve under fault injection"
     else "Service soak: serve under fault injection, per fault class");
  let module J = Epre_telemetry.Tjson in
  let distinct = if small then 12 else 60 in
  let total = if small then 48 else 400 in
  let workers = if small then 2 else Pool.default_jobs () in
  let corpus =
    Array.init distinct (fun i ->
        let source = Epre_fuzz.Gen.source (i + 1) in
        let prog = Epre_frontend.Frontend.compile_string source in
        Epre_ir.Ir_text.print_program prog)
  in
  let st = ref 54321 in
  let ranks = zipf_ranks ~st ~n:distinct ~total in
  let job_lines =
    List.mapi
      (fun i rank ->
        J.to_string
          (J.Obj
             [ ("id", J.Str (Printf.sprintf "job-%d" (i + 1)));
               ("level", J.Str "partial");
               ("iloc", J.Str corpus.(rank)) ]))
      ranks
  in
  let jobs_path = Filename.temp_file "eprec-soak" ".jobs" in
  let oc = open_out_bin jobs_path in
  List.iter (fun l -> output_string oc l; output_char oc '\n') job_lines;
  close_out oc;
  let fresh_dir tag =
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "eprec-soak-%d-%s" (Unix.getpid ()) tag)
    in
    let rec rm p =
      if Sys.file_exists p then
        if Sys.is_directory p then begin
          Array.iter (fun f -> rm (Filename.concat p f)) (Sys.readdir p);
          Sys.rmdir p
        end
        else Sys.remove p
    in
    rm d;
    d
  in
  let parse_results path =
    let ic = open_in_bin path in
    let rows = ref [] in
    (try
       while true do
         let line = input_line ic in
         match J.parse line with
         | Error m -> failwith ("bad result line: " ^ m)
         | Ok j ->
           let str f =
             match J.member f j with Some (J.Str s) -> Some s | _ -> None
           in
           let ok =
             match J.member "ok" j with Some (J.Bool b) -> b | _ -> false
           in
           let latency =
             match J.member "latency_ms" j with
             | Some (J.Float f) -> f
             | Some (J.Int i) -> float_of_int i
             | _ -> 0.0
           in
           rows :=
             { sk_id = Option.value (str "id") ~default:"?"; sk_ok = ok;
               sk_outcome = Option.value (str "outcome") ~default:"?";
               sk_iloc = str "iloc"; sk_latency_ms = latency }
             :: !rows
       done
     with End_of_file -> close_in_noerr ic);
    List.rev !rows
  in
  let run_serve ~tag ~jobs ~chaos ~policy () =
    let dir = fresh_dir tag in
    let cache = Epre_service.Cache.create ~dir () in
    let out_path = Filename.temp_file "eprec-soak" ".out" in
    let ic = open_in_bin jobs_path and out = open_out_bin out_path in
    let summary, wall_ms =
      Pool.with_pool ~jobs (fun pool ->
          let t0 = Epre_telemetry.Telemetry.Clock.now_ns () in
          let s =
            Service.serve ~cache ~policy ~chaos ~pool ~input:ic ~output:out ()
          in
          (s, Epre_telemetry.Telemetry.Clock.elapsed_ms ~since:t0))
    in
    close_in_noerr ic;
    close_out_noerr out;
    let rows = parse_results out_path in
    Sys.remove out_path;
    (summary, wall_ms, rows)
  in
  let policy =
    { Service.Policy.timeout_ms = Some 300.0; retries = 2; backoff_ms = 1.0;
      degrade = false }
  in
  (* Undisturbed serial reference: the byte-identity baseline. *)
  let _, ref_ms, reference =
    run_serve ~tag:"ref" ~jobs:1 ~chaos:[] ~policy:Service.Policy.default ()
  in
  assert (List.length reference = total);
  assert (List.for_all (fun r -> r.sk_ok) reference);
  let ref_iloc = List.map (fun r -> (r.sk_id, r.sk_iloc)) reference in
  let class_rows =
    List.map
      (fun fault ->
        let name = Chaos.service_name fault in
        let _, serial_ms, serial =
          run_serve ~tag:(name ^ "-s") ~jobs:1 ~chaos:[ fault ] ~policy ()
        in
        let summary, parallel_ms, parallel =
          run_serve ~tag:(name ^ "-p") ~jobs:workers ~chaos:[ fault ] ~policy ()
        in
        let lost = total - List.length parallel in
        let in_order =
          List.mapi (fun i r -> (i, r.sk_id)) parallel
          |> List.for_all (fun (i, id) -> id = Printf.sprintf "job-%d" (i + 1))
        in
        let view r = (r.sk_id, r.sk_ok, r.sk_outcome, r.sk_iloc) in
        let identical = List.map view serial = List.map view parallel in
        let ok_matches_reference =
          List.for_all
            (fun r ->
              (not r.sk_ok) || List.assoc r.sk_id ref_iloc = r.sk_iloc)
            parallel
        in
        let tally o =
          List.length (List.filter (fun r -> r.sk_outcome = o) parallel)
        in
        let ok = tally "ok" and error = tally "error" in
        let timeout = tally "timeout" and retried = tally "retried_ok" in
        let p50, p90, p99 =
          latency_quantiles_ms (List.map (fun r -> r.sk_latency_ms) parallel)
        in
        Printf.printf
          "%-22s lost %d, ok %d, retried_ok %d, timeout %d, error %d | \
           in-order %b, serial==parallel %b, ok==reference %b (serial %.0f \
           ms, parallel %.0f ms, p50/p90/p99 %.1f/%.1f/%.1f ms)\n"
          name lost ok retried timeout error in_order identical
          ok_matches_reference serial_ms parallel_ms p50 p90 p99;
        (* The hard contract, per fault class. *)
        assert (lost = 0);
        assert in_order;
        assert identical;
        assert ok_matches_reference;
        (match fault with
        | Chaos.Worker_raise ->
          (* Fired jobs retry once and succeed; nothing may fail. *)
          assert (error = 0 && timeout = 0 && retried > 0)
        | Chaos.Slow_job ->
          (* Fired jobs blow their deadline, deterministically. *)
          assert (timeout > 0 && error = 0 && ok + timeout = total)
        | Chaos.Cache_corrupt | Chaos.Cache_lock_hold ->
          (* Absorbed invisibly: poison recovery / lock waiting. *)
          assert (error = 0 && timeout = 0 && ok = total)
        | Chaos.Kill_self | Chaos.Pass_poison ->
          (* Exercised by their dedicated classes below, not the generic
             per-fault loop. *)
          assert false);
        ignore summary;
        J.Obj
          [ ("fault", J.Str name);
            ("lost", J.Int lost);
            ("ok", J.Int ok);
            ("retried_ok", J.Int retried);
            ("timeout", J.Int timeout);
            ("error", J.Int error);
            ("in_order", J.Bool in_order);
            ("serial_parallel_identical", J.Bool identical);
            ("ok_matches_reference", J.Bool ok_matches_reference);
            ("serial_ms", J.Float serial_ms);
            ("parallel_ms", J.Float parallel_ms);
            ("latency_p50_ms", J.Float p50);
            ("latency_p90_ms", J.Float p90);
            ("latency_p99_ms", J.Float p99) ])
      [ Chaos.Worker_raise; Chaos.Slow_job; Chaos.Cache_corrupt;
        Chaos.Cache_lock_hold ]
  in
  (* Crash-safety class: a serve killed mid-batch by chaos:kill-self,
     resumed from its journal; killed output ++ resumed output must equal
     the undisturbed reference on the (id, ok, outcome, iloc) view — zero
     jobs lost, zero duplicated. *)
  let kill_resume_row =
    let batch = 32 in
    (* A seed that deterministically spares the first batch and kills a
       later one, so the crash happens with output already streamed. *)
    let fires_in lo hi s =
      let rec go i =
        i <= hi
        && (Chaos.fires ~seed:s Chaos.Kill_self
              ~key:(Printf.sprintf "job-%d" i)
           || go (i + 1))
      in
      go lo
    in
    let seed =
      let rec find s =
        if s > 100_000 then failwith "no kill-self seed found"
        else if (not (fires_in 1 batch s)) && fires_in (batch + 1) total s
        then s
        else find (s + 1)
      in
      find 1
    in
    let dir = fresh_dir "kill" in
    let jpath = Filename.concat dir "journal.jsonl" in
    let out_path = Filename.temp_file "eprec-soak" ".out" in
    let run ~chaos ~resume () =
      let cache = Epre_service.Cache.create ~dir () in
      let journal =
        Epre_service.Journal.open_
          ~mode:(if resume then `Resume else `Fresh)
          ~path:jpath ()
      in
      let ic = open_in_bin jobs_path
      and out =
        open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 out_path
      in
      let res =
        match
          Pool.with_pool ~jobs:1 (fun pool ->
              Service.serve ~cache ~batch ~policy ~chaos ~journal ~resume
                ~pool ~input:ic ~output:out ())
        with
        | s -> Ok s
        | exception Service.Killed -> Error `Killed
      in
      close_in_noerr ic;
      close_out_noerr out;
      Epre_service.Journal.close journal;
      res
    in
    let saved_seed = !Chaos.default_seed in
    Chaos.default_seed := seed;
    let killed = run ~chaos:[ Chaos.Kill_self ] ~resume:false () in
    Chaos.default_seed := saved_seed;
    assert (killed = Error `Killed);
    let emitted = List.length (parse_results out_path) in
    assert (emitted > 0 && emitted < total);
    let resumed =
      match run ~chaos:[] ~resume:true () with
      | Ok s -> s
      | Error `Killed -> failwith "resume run must complete"
    in
    let merged = parse_results out_path in
    Sys.remove out_path;
    let view r = (r.sk_id, r.sk_ok, r.sk_outcome, r.sk_iloc) in
    let matches = List.map view merged = List.map view reference in
    Printf.printf
      "%-22s killed after %d, replayed %d, resumed %d | merged==reference \
       %b\n"
      "chaos:kill-self" emitted resumed.Service.replayed
      resumed.Service.jobs matches;
    assert matches;
    assert (resumed.Service.replayed = emitted);
    assert (resumed.Service.jobs = total - emitted);
    assert (resumed.Service.failed = 0);
    J.Obj
      [ ("fault", J.Str "chaos:kill-self");
        ("killed_after", J.Int emitted);
        ("replayed", J.Int resumed.Service.replayed);
        ("resumed", J.Int resumed.Service.jobs);
        ("merged_matches_reference", J.Bool matches) ]
  in
  (* Degradation class: chaos:pass-poison deterministically breaks one
     pass; with the ladder and circuit breakers every job must still be
     served (degraded, never failed), and the process never exits. *)
  let pass_poison_row =
    let requested =
      let target = Option.get (Service.poisoned_pass ()) in
      List.find
        (fun l -> List.mem target (Epre.Pipeline.level_stages ~level:l))
        Epre.Pipeline.all_levels
    in
    let pj_path = Filename.temp_file "eprec-soak" ".jobs" in
    let oc = open_out_bin pj_path in
    List.iteri
      (fun i rank ->
        output_string oc
          (J.to_string
             (J.Obj
                [ ("id", J.Str (Printf.sprintf "job-%d" (i + 1)));
                  ("level",
                   J.Str (Epre.Pipeline.level_to_string requested));
                  ("iloc", J.Str corpus.(rank)) ]));
        output_char oc '\n')
      ranks;
    close_out oc;
    let dir = fresh_dir "poison" in
    let cache = Epre_service.Cache.create ~dir () in
    let breaker = Epre_service.Breaker.create () in
    let out_path = Filename.temp_file "eprec-soak" ".out" in
    let ic = open_in_bin pj_path and out = open_out_bin out_path in
    let summary =
      Pool.with_pool ~jobs:workers (fun pool ->
          Service.serve ~cache
            ~policy:{ policy with Service.Policy.degrade = true }
            ~chaos:[ Chaos.Pass_poison ] ~breaker ~pool ~input:ic
            ~output:out ())
    in
    close_in_noerr ic;
    close_out_noerr out;
    let rows = parse_results out_path in
    Sys.remove out_path;
    Sys.remove pj_path;
    let lost = total - List.length rows in
    let tally o =
      List.length (List.filter (fun r -> r.sk_outcome = o) rows)
    in
    let degraded = tally "degraded" and error = tally "error" in
    let completed = List.for_all (fun r -> r.sk_ok) rows in
    Printf.printf
      "%-22s lost %d, degraded %d/%d, error %d | 100%% completion %b \
       (breakers: %s)\n"
      "chaos:pass-poison" lost degraded total error completed
      (String.concat ", "
         (List.map
            (fun (p, s) -> p ^ "=" ^ s)
            (Epre_service.Breaker.snapshot breaker)));
    assert (lost = 0);
    assert completed;
    assert (error = 0);
    assert (degraded > 0);
    assert (summary.Service.failed = 0);
    J.Obj
      [ ("fault", J.Str "chaos:pass-poison");
        ("requested_level",
         J.Str (Epre.Pipeline.level_to_string requested));
        ("lost", J.Int lost);
        ("degraded", J.Int degraded);
        ("error", J.Int error);
        ("degraded_rate",
         J.Float (float_of_int degraded /. float_of_int total));
        ("completion", J.Bool completed) ]
  in
  let class_rows = class_rows @ [ kill_resume_row; pass_poison_row ] in
  Sys.remove jobs_path;
  let json =
    J.Obj
      [ ("schema", J.Str "epre/bench-soak/v1");
        ("note", J.Str "Zipf serve traffic replayed under each service \
                        fault class, serial and parallel; asserts zero \
                        lost jobs, input order, serial/parallel report \
                        identity and reference byte-identity of \
                        successful outputs; plus a kill/resume crash \
                        drill (journal replay merges byte-identically) \
                        and a pass-poison degradation class (breakers + \
                        ladder keep 100% completion)");
        ("small", J.Bool small);
        ("workers", J.Int workers);
        ("distinct_programs", J.Int distinct);
        ("total_jobs", J.Int total);
        ("timeout_ms", J.Float 300.0);
        ("retries", J.Int 2);
        ("reference_ms", J.Float ref_ms);
        ("classes", J.Arr class_rows) ]
  in
  let oc = open_out_bin "BENCH_soak.json" in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_soak.json\n"

(* ------------------------------------------------------------------ *)

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "tables" in
  match what with
  | "table1" -> run_table1 ()
  | "table2" -> run_table2 ()
  | "hierarchy" -> run_hierarchy ()
  | "interaction" -> run_interaction ()
  | "ablation" -> run_ablation ()
  | "strength" -> run_strength ()
  | "adce" -> run_adce ()
  | "bechamel" -> run_bechamel ()
  | "baseline" -> run_baseline ()
  | "traffic" ->
    run_traffic ~small:(Array.length Sys.argv > 2 && Sys.argv.(2) = "small") ()
  | "soak" ->
    run_soak ~small:(Array.length Sys.argv > 2 && Sys.argv.(2) = "small") ()
  | "regress" ->
    run_regress
      (if Array.length Sys.argv > 2 then Sys.argv.(2) else "BENCH_pipeline.json")
  | "all" ->
    run_table1 ();
    run_table2 ();
    run_hierarchy ();
    run_interaction ();
    run_ablation ();
    run_strength ();
    run_adce ();
    run_bechamel ()
  | _ ->
    run_table1 ();
    run_table2 ();
    run_hierarchy ();
    run_interaction ();
    run_ablation ();
    run_strength ();
    run_adce ()
