(* Benchmark harness.

   Regenerates every table and figure-level experiment of the paper:

     table1     - Table 1: dynamic ILOC operation counts per workload at the
                  four optimization levels, with percentage improvements
     table2     - Table 2: static code expansion from forward propagation
     hierarchy  - Section 5.3: dominator CSE vs available CSE vs PRE
     interaction- Section 5.2: premature mul->shift strength reduction
                  blocking reassociation
     bechamel   - compile-time cost of each optimizer pass (Bechamel, one
                  Test.make per pass, plus one per table-regeneration row)
     baseline   - write BENCH_pipeline.json: per-pass wall-clock ns/run
                  (monotonic clock, best of several suite sweeps) plus the
                  Table 1 dynamic-count table — the perf trajectory seed
                  that CI uploads and future PRs regress against

   With no argument, everything except the (slow) bechamel timings runs;
   `bench/main.exe all` includes them. *)

let section title = Printf.printf "\n=== %s ===\n%!" title

(* ------------------------------------------------------------------ *)
(* Paper tables                                                        *)

let run_table1 () =
  section
    "Table 1: dynamic operation counts (baseline / partial / reassociation / distribution)";
  print_string (Epre.Experiments.render_table1 (Epre.Experiments.table1 ()))

let run_table2 () =
  section "Table 2: code expansion from forward propagation (static ILOC operations)";
  print_string (Epre.Experiments.render_table2 (Epre.Experiments.table2 ()))

let run_hierarchy () =
  section "Section 5.3: redundancy-elimination hierarchy (dynamic operations)";
  print_string (Epre.Experiments.render_hierarchy (Epre.Experiments.hierarchy ()))

(* Section 5.2: rewriting x*2^k into shifts *before* reassociation destroys
   grouping opportunities ("this effect is measurable; indeed, we have
   accidentally measured it more than once"). Compare the distribution
   pipeline against the same pipeline with an early shift-rewriting
   peephole slipped in front. *)
let run_interaction () =
  section "Section 5.2: premature mul->shift strength reduction";
  let source =
    {|
fn f(n: int, x: int, y: int): int {
  var s: int;
  var i: int;
  for i = 1 to n {
    // Left association gives ((x*i)*2): a premature shift freezes the 2
    // at the outside, while reassociation would sort it inward to form
    // the hoistable products 2*x and 2*y.
    s = s + x * i * 2 + y * i * 2;
  }
  return s;
}

fn main(): int {
  return f(100, 3, 5);
}
|}
  in
  let shift_cfg = { Epre_opt.Peephole.mul_to_shift = true } in
  let measure ~premature_shift =
    let prog = Epre_frontend.Frontend.compile_string source in
    List.iter
      (fun r ->
        if premature_shift then ignore (Epre_opt.Peephole.run ~config:shift_cfg r);
        ignore
          (Epre_reassoc.Reassociate.run
             ~config:{ Epre_reassoc.Expr_tree.reassoc_float = true; distribute = true }
             r);
        ignore (Epre_gvn.Gvn.run r);
        ignore (Epre_pre.Pre.run r);
        ignore (Epre_opt.Constprop.run r);
        ignore (Epre_opt.Peephole.run ~config:shift_cfg r);
        ignore (Epre_opt.Dce.run r);
        ignore (Epre_opt.Coalesce.run r);
        ignore (Epre_opt.Clean.run r))
      (Epre_ir.Program.routines prog);
    let result = Epre_interp.Interp.run prog ~entry:"main" ~args:[] in
    ( Epre_interp.Counts.total result.Epre_interp.Interp.counts,
      result.Epre_interp.Interp.return_value )
  in
  let good, v1 = measure ~premature_shift:false in
  let bad, v2 = measure ~premature_shift:true in
  assert (v1 = v2);
  Printf.printf "shift rewriting after reassociation : %6d dynamic operations\n" good;
  Printf.printf "shift rewriting before reassociation: %6d dynamic operations\n" bad;
  Printf.printf "penalty for the premature rewrite   : %+6d (%s)\n" (bad - good)
    (if bad >= good then "the Section 5.2 effect" else "unexpected!")

(* Ablation: the paper's Drechsler–Stadel edge placement vs the original
   Morel–Renvoise block-end placement. Edge placement should win wherever
   critical edges would otherwise block an insertion. *)
let run_ablation () =
  section "Ablation: edge-placement PRE (Drechsler-Stadel/LCM) vs Morel-Renvoise";
  Printf.printf "%-12s %14s %16s\n" "routine" "edge (paper)" "block-end (M-R)";
  List.iter
    (fun w ->
      let prog = Epre_workloads.Workloads.compile w in
      let measure pre_run =
        let p = Epre_ir.Program.copy prog in
        List.iter
          (fun r ->
            ignore (Epre_opt.Naming.run r);
            pre_run r;
            ignore (Epre_opt.Constprop.run r);
            ignore (Epre_opt.Peephole.run r);
            ignore (Epre_opt.Dce.run r);
            ignore (Epre_opt.Coalesce.run r);
            ignore (Epre_opt.Clean.run r))
          (Epre_ir.Program.routines p);
        let result = Epre_interp.Interp.run p ~entry:"main" ~args:[] in
        Epre_interp.Counts.total result.Epre_interp.Interp.counts
      in
      let lcm = measure (fun r -> ignore (Epre_pre.Pre.run r)) in
      let mr = measure (fun r -> ignore (Epre_pre.Pre_classic.run r)) in
      Printf.printf "%-12s %14d %16d\n" w.Epre_workloads.Workloads.name lcm mr)
    Epre_workloads.Workloads.all

(* Extension: operator strength reduction, the pass the paper names as
   missing ("we expect that strength reduction will improve the code beyond
   the results shown in this paper", Section 4.1/5.2). Under the unit-cost
   operation metric a reduced multiply trades 1:1 against the added update,
   so the meaningful column is dynamic multiplies/divides. *)
let run_strength () =
  section "Extension: strength reduction after the distribution pipeline (dynamic mult/div)";
  Printf.printf "%-12s %18s %18s\n" "routine" "distribution" "+ strength red.";
  List.iter
    (fun w ->
      let prog = Epre_workloads.Workloads.compile w in
      let p, _ = Epre.Pipeline.optimized_copy ~level:Epre.Pipeline.Distribution prog in
      let mults q =
        (Epre_interp.Interp.run q ~entry:"main" ~args:[]).Epre_interp.Interp.counts
          .Epre_interp.Counts.mults
      in
      let before = mults p in
      List.iter
        (fun r ->
          ignore (Epre_opt.Strength.run r);
          ignore (Epre_opt.Constprop.run r);
          ignore (Epre_opt.Peephole.run r);
          ignore (Epre_opt.Dce.run r);
          ignore (Epre_opt.Coalesce.run r);
          ignore (Epre_opt.Clean.run r))
        (Epre_ir.Program.routines p);
      Printf.printf "%-12s %18d %18d\n" w.Epre_workloads.Workloads.name before (mults p))
    Epre_workloads.Workloads.all

(* Extension: conservative vs control-dependence DCE (Cytron et al. 7.1 is
   the paper's citation for its dead code elimination; [Adce] implements the
   control-dependence formulation in full). *)
let run_adce () =
  section "Extension: conservative DCE vs control-dependence ADCE (dynamic operations)";
  let measure prog pass =
    let p = Epre_ir.Program.copy prog in
    List.iter
      (fun r ->
        pass r;
        ignore (Epre_opt.Clean.run r))
      (Epre_ir.Program.routines p);
    let result = Epre_interp.Interp.run p ~entry:"main" ~args:[] in
    Epre_interp.Counts.total result.Epre_interp.Interp.counts
  in
  (* On the numeric suite the two coincide: hand-written kernels contain no
     dead control flow (every loop feeds the checksum). The difference
     appears exactly where Cytron et al. place it: code with dead regions. *)
  let suite_same = ref true in
  List.iter
    (fun w ->
      let prog = Epre_workloads.Workloads.compile w in
      if measure prog (fun r -> ignore (Epre_opt.Dce.run r))
         <> measure prog (fun r -> ignore (Epre_opt.Adce.run r))
      then suite_same := false)
    Epre_workloads.Workloads.all;
  Printf.printf "workload suite: dce and adce %s on all %d workloads\n"
    (if !suite_same then "coincide (no dead control flow in the kernels)" else "differ")
    (List.length Epre_workloads.Workloads.all);
  Printf.printf "%-22s %14s %14s\n" "dead-region micro" "dce+clean" "adce+clean";
  List.iter
    (fun (label, src) ->
      let prog = Epre_frontend.Frontend.compile_string src in
      let plain = measure prog (fun r -> ignore (Epre_opt.Dce.run r)) in
      let aggressive = measure prog (fun r -> ignore (Epre_opt.Adce.run r)) in
      Printf.printf "%-22s %14d %14d\n" label plain aggressive)
    [ ( "dead-loop",
        "fn main(): int { var d: int; var i: int; for i = 1 to 200 { d = d + i * i; } return 42; }" );
      ( "dead-nest",
        "fn main(): int { var d: int; var i: int; var j: int; for i = 1 to 30 { for j = 1 to 30 { d = d + i * j; } } return 7; }" );
      ( "dead-diamond",
        "fn main(): int { var d: int; var i: int; for i = 1 to 100 { if (mod(i, 2) == 0) { d = 3; } else { d = 4; } } return 9; }" ) ]

(* ------------------------------------------------------------------ *)
(* Bechamel timing benches                                             *)

let suite_cache =
  lazy (List.map Epre_workloads.Workloads.compile Epre_workloads.Workloads.all)

let bench_pass name pass =
  (* Each run works on fresh copies: passes mutate. *)
  Bechamel.Test.make ~name
    (Bechamel.Staged.stage (fun () ->
         List.iter
           (fun prog ->
             let p = Epre_ir.Program.copy prog in
             List.iter pass (Epre_ir.Program.routines p))
           (Lazy.force suite_cache)))

let reassoc_cfg = { Epre_reassoc.Expr_tree.reassoc_float = true; distribute = true }

(* The per-pass timing subjects, shared between the Bechamel benches and
   the `baseline` JSON snapshot so the two report the same work. *)
let pass_specs : (string * (Epre_ir.Routine.t -> unit)) list =
  [
    ("ssa-roundtrip", fun r -> ignore (Epre_ssa.Ssa.destroy (Epre_ssa.Ssa.build r)));
    ("constprop", fun r -> ignore (Epre_opt.Constprop.run r));
    ("peephole", fun r -> ignore (Epre_opt.Peephole.run r));
    ("dce", fun r -> ignore (Epre_opt.Dce.run r));
    ("coalesce", fun r -> ignore (Epre_opt.Coalesce.run r));
    ( "naming+pre",
      fun r ->
        ignore (Epre_opt.Naming.run r);
        ignore (Epre_pre.Pre.run r) );
    ("reassociate", fun r -> ignore (Epre_reassoc.Reassociate.run ~config:reassoc_cfg r));
    ("gvn", fun r -> ignore (Epre_gvn.Gvn.run r));
  ]

let benches () =
  let open Bechamel in
  List.map (fun (name, pass) -> bench_pass name pass) pass_specs
  @ [
    Test.make ~name:"table1-row-saxpy"
      (Staged.stage (fun () ->
           ignore
             (Epre.Experiments.table1_row
                (Option.get (Epre_workloads.Workloads.find "saxpy")))));
    Test.make ~name:"table2-row-saxpy"
      (Staged.stage (fun () ->
           ignore
             (Epre.Experiments.table2_row
                (Option.get (Epre_workloads.Workloads.find "saxpy")))));
  ]

let run_bechamel () =
  section "Bechamel: per-pass compile-time cost over the whole suite";
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analysis =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-24s %12.0f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "%-24s (no estimate)\n%!" name)
        analysis)
    (benches ())

(* ------------------------------------------------------------------ *)
(* Perf baseline snapshot                                              *)

(* Quick wall-clock estimate without Bechamel's OLS machinery: best of
   [runs] sweeps over fresh copies of the whole workload suite, on the
   telemetry monotonic clock. Coarser than `bechamel`, but fast enough for
   CI and stable enough to regress against. *)
let baseline_runs = 5

let time_pass pass =
  let sweep () =
    List.iter
      (fun prog ->
        let p = Epre_ir.Program.copy prog in
        List.iter pass (Epre_ir.Program.routines p))
      (Lazy.force suite_cache)
  in
  sweep () (* warm-up: fault in the suite cache and the pass's tables *);
  let best = ref Int64.max_int in
  for _ = 1 to baseline_runs do
    let t0 = Epre_telemetry.Telemetry.Clock.now_ns () in
    sweep ();
    let d = Int64.sub (Epre_telemetry.Telemetry.Clock.now_ns ()) t0 in
    if Int64.compare d !best < 0 then best := d
  done;
  Int64.to_int !best

let baseline_json () =
  let module J = Epre_telemetry.Tjson in
  let passes =
    List.map
      (fun (name, pass) ->
        J.Obj
          [
            ("name", J.Str name);
            ("ns_per_run", J.Int (time_pass pass));
            ("runs", J.Int baseline_runs);
          ])
      pass_specs
  in
  let counts =
    List.map
      (fun (r : Epre.Experiments.table1_row) ->
        J.Obj
          [
            ("routine", J.Str r.Epre.Experiments.name);
            ("baseline", J.Int r.Epre.Experiments.baseline);
            ("partial", J.Int r.Epre.Experiments.partial);
            ("reassociation", J.Int r.Epre.Experiments.reassociation);
            ("distribution", J.Int r.Epre.Experiments.distribution);
          ])
      (Epre.Experiments.table1 ())
  in
  J.Obj
    [
      ("schema", J.Str "epre/bench-baseline/v1");
      ("note", J.Str "per-pass wall clock over one sweep of the workload \
                      suite (best of runs), plus Table 1 dynamic counts");
      ("passes", J.Arr passes);
      ("dynamic_counts", J.Arr counts);
    ]

let run_baseline () =
  section "Perf baseline: per-pass wall clock + dynamic counts -> BENCH_pipeline.json";
  let json = Epre_telemetry.Tjson.to_string (baseline_json ()) in
  let oc = open_out_bin "BENCH_pipeline.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_pipeline.json (%d bytes)\n" (String.length json + 1)

(* ------------------------------------------------------------------ *)

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "tables" in
  match what with
  | "table1" -> run_table1 ()
  | "table2" -> run_table2 ()
  | "hierarchy" -> run_hierarchy ()
  | "interaction" -> run_interaction ()
  | "ablation" -> run_ablation ()
  | "strength" -> run_strength ()
  | "adce" -> run_adce ()
  | "bechamel" -> run_bechamel ()
  | "baseline" -> run_baseline ()
  | "all" ->
    run_table1 ();
    run_table2 ();
    run_hierarchy ();
    run_interaction ();
    run_ablation ();
    run_strength ();
    run_adce ();
    run_bechamel ()
  | _ ->
    run_table1 ();
    run_table2 ();
    run_hierarchy ();
    run_interaction ();
    run_ablation ();
    run_strength ();
    run_adce ()
